// TTL-scoped flooding: reach, duplicate suppression, hop counting.
#include <gtest/gtest.h>

#include <map>

#include "test_util.hpp"

namespace manet {
namespace {

using manet::testing::rig;

struct tag_payload final : typed_payload<tag_payload> {
  int tag = 0;
};

TEST(Flooding, TtlLimitsReach) {
  for (int ttl = 1; ttl <= 5; ++ttl) {
    rig r = rig::line(8);
    std::map<node_id, int> heard;
    r.floods->set_handler([&](node_id self, const packet&) { ++heard[self]; });
    r.floods->flood(0, 150, r.net->payloads().make<tag_payload>(), 64, ttl);
    r.run_for(5.0);
    // Exactly the nodes within ttl hops hear it (line topology).
    EXPECT_EQ(heard.size(), static_cast<std::size_t>(std::min(ttl, 7)))
        << "ttl=" << ttl;
    for (const auto& [n, count] : heard) {
      EXPECT_LE(static_cast<int>(n), ttl);
      EXPECT_EQ(count, 1) << "duplicate delivery at node " << n;
    }
  }
}

TEST(Flooding, EveryNodeForwardsOnce) {
  rig r = rig::line(6);
  r.floods->set_handler([](node_id, const packet&) {});
  r.floods->flood(0, 150, nullptr, 64, 10);
  r.run_for(5.0);
  // Nodes 0..4 transmit (node 5 receives with ttl 10-5 left but has no new
  // neighbors; it still rebroadcasts once). Total = 6 transmissions.
  EXPECT_EQ(r.net->meter().counters(150).tx_frames, 6u);
}

TEST(Flooding, HopsCountedAlongPath) {
  rig r = rig::line(5);
  std::map<node_id, int> hops;
  r.floods->set_handler([&](node_id self, const packet& p) { hops[self] = p.hops; });
  r.floods->flood(0, 150, nullptr, 64, 10);
  r.run_for(5.0);
  EXPECT_EQ(hops[1], 0);  // first hop: originator's own transmission
  EXPECT_EQ(hops[2], 1);
  EXPECT_EQ(hops[4], 3);
}

TEST(Flooding, ZeroTtlIsNoop) {
  rig r = rig::line(3);
  int heard = 0;
  r.floods->set_handler([&](node_id, const packet&) { ++heard; });
  EXPECT_EQ(r.floods->flood(0, 150, nullptr, 64, 0), 0u);
  r.run_for(1.0);
  EXPECT_EQ(heard, 0);
  EXPECT_EQ(r.net->meter().total_tx_frames(), 0u);
}

TEST(Flooding, DownOriginIsNoop) {
  rig r = rig::line(3);
  r.net->set_node_up(0, false);
  EXPECT_EQ(r.floods->flood(0, 150, nullptr, 64, 3), 0u);
  r.run_for(1.0);
  EXPECT_EQ(r.net->meter().total_tx_frames(), 0u);
}

TEST(Flooding, DownNodeBlocksPropagation) {
  rig r = rig::line(5);
  r.net->set_node_up(2, false);
  std::map<node_id, int> heard;
  r.floods->set_handler([&](node_id self, const packet&) { ++heard[self]; });
  r.floods->flood(0, 150, nullptr, 64, 10);
  r.run_for(5.0);
  EXPECT_TRUE(heard.count(1));
  EXPECT_FALSE(heard.count(2));
  EXPECT_FALSE(heard.count(3));
  EXPECT_FALSE(heard.count(4));
}

TEST(Flooding, MeshDeliversOncePerNode) {
  // Dense 3x3 grid, everyone within range of several others.
  std::vector<vec2> pos;
  for (int y = 0; y < 3; ++y) {
    for (int x = 0; x < 3; ++x) {
      pos.push_back(vec2{100.0 * x, 100.0 * y});
    }
  }
  rig r(pos);
  std::map<node_id, int> heard;
  r.floods->set_handler([&](node_id self, const packet&) { ++heard[self]; });
  r.floods->flood(4, 150, nullptr, 64, 5);  // center node
  r.run_for(5.0);
  EXPECT_EQ(heard.size(), 8u);
  for (const auto& [n, count] : heard) EXPECT_EQ(count, 1) << "node " << n;
}

TEST(Flooding, TwoFloodsDistinctUids) {
  rig r = rig::line(3);
  std::map<packet_uid, int> deliveries;
  r.floods->set_handler([&](node_id, const packet& p) { ++deliveries[p.uid]; });
  const auto u1 = r.floods->flood(0, 150, nullptr, 64, 5);
  const auto u2 = r.floods->flood(0, 150, nullptr, 64, 5);
  r.run_for(5.0);
  EXPECT_NE(u1, u2);
  EXPECT_EQ(deliveries[u1], 2);  // nodes 1 and 2
  EXPECT_EQ(deliveries[u2], 2);
}

TEST(Flooding, PayloadSharedAcrossReceivers) {
  rig r = rig::line(4);
  auto payload = r.net->payloads().make<tag_payload>();
  payload->tag = 77;
  int checked = 0;
  r.floods->set_handler([&](node_id, const packet& p) {
    const auto* t = payload_cast<tag_payload>(p);
    ASSERT_NE(t, nullptr);
    EXPECT_EQ(t->tag, 77);
    ++checked;
  });
  r.floods->flood(0, 150, payload, 64, 10);
  r.run_for(5.0);
  EXPECT_EQ(checked, 3);
}

}  // namespace
}  // namespace manet
