// Sweep executor suite: golden determinism of the parallel path (jobs=4
// must reproduce jobs=1 bit for bit on a fig7-style spec), the per-run seed
// scheme, and first direct unit tests for average() and render_series().
#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "scenario/sweep.hpp"

namespace manet {
namespace {

/// Every field of run_result, compared exactly. Doubles are compared
/// bitwise-equal on purpose: the parallel executor promises byte-identical
/// results, not merely close ones.
void expect_identical(const run_result& a, const run_result& b,
                      const std::string& what) {
  EXPECT_EQ(a.protocol, b.protocol) << what;
  EXPECT_EQ(a.sim_time, b.sim_time) << what;
  EXPECT_EQ(a.total_messages, b.total_messages) << what;
  EXPECT_EQ(a.app_messages, b.app_messages) << what;
  EXPECT_EQ(a.routing_messages, b.routing_messages) << what;
  EXPECT_EQ(a.total_bytes, b.total_bytes) << what;
  EXPECT_EQ(a.queries_issued, b.queries_issued) << what;
  EXPECT_EQ(a.queries_answered, b.queries_answered) << what;
  EXPECT_EQ(a.avg_query_latency_s, b.avg_query_latency_s) << what;
  EXPECT_EQ(a.p95_query_latency_s, b.p95_query_latency_s) << what;
  EXPECT_EQ(a.stale_answers, b.stale_answers) << what;
  EXPECT_EQ(a.delta_violations, b.delta_violations) << what;
  EXPECT_EQ(a.avg_stale_age_s, b.avg_stale_age_s) << what;
  EXPECT_EQ(a.updates, b.updates) << what;
  EXPECT_EQ(a.drops_total, b.drops_total) << what;
  EXPECT_EQ(a.drops_node_down, b.drops_node_down) << what;
  EXPECT_EQ(a.drops_out_of_range, b.drops_out_of_range) << what;
  EXPECT_EQ(a.drops_channel_loss, b.drops_channel_loss) << what;
  EXPECT_EQ(a.drops_collision, b.drops_collision) << what;
  EXPECT_EQ(a.drops_no_route, b.drops_no_route) << what;
  EXPECT_EQ(a.drops_ttl_expired, b.drops_ttl_expired) << what;
  EXPECT_EQ(a.drops_queue_flushed, b.drops_queue_flushed) << what;
  EXPECT_EQ(a.fault_episodes, b.fault_episodes) << what;
  EXPECT_EQ(a.fault_recovered, b.fault_recovered) << what;
  EXPECT_EQ(a.mean_reconvergence_s, b.mean_reconvergence_s) << what;
  EXPECT_EQ(a.mean_relay_repair_s, b.mean_relay_repair_s) << what;
  EXPECT_EQ(a.mean_stale_window_s, b.mean_stale_window_s) << what;
  EXPECT_EQ(a.invariant_violations, b.invariant_violations) << what;
  EXPECT_EQ(a.energy_spent_j, b.energy_spent_j) << what;
  EXPECT_EQ(a.max_node_energy_spent_j, b.max_node_energy_spent_j) << what;
  EXPECT_EQ(a.avg_relay_peers, b.avg_relay_peers) << what;
}

/// Small fig7-style spec: two x values, two variants, two repetitions of a
/// short but non-trivial scenario (mobility, churn and AODV all active).
sweep_spec small_fig7_spec() {
  sweep_spec spec;
  spec.base.n_peers = 12;
  spec.base.cache_num = 4;
  spec.base.sim_time = 120;
  spec.base.warmup = 0;
  spec.base.seed = 42;
  spec.base.invariants = false;
  spec.x_name = "I_Update(s)";
  spec.xs = {30, 60};
  spec.apply = [](scenario_params& p, double x) { p.i_update = x; };
  spec.variants = {{"push", "push", level_mix::strong_only()},
                   {"pull", "pull", level_mix::strong_only()}};
  spec.repetitions = 2;
  return spec;
}

TEST(Sweep, ParallelMatchesSerialBitIdentical) {
  sweep_spec serial = small_fig7_spec();
  serial.jobs = 1;
  sweep_spec parallel = small_fig7_spec();
  parallel.jobs = 4;

  const std::vector<sweep_point> a = run_sweep(serial);
  const std::vector<sweep_point> b = run_sweep(parallel);

  ASSERT_EQ(a.size(), b.size());
  ASSERT_EQ(a.size(), serial.xs.size() * serial.variants.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].x, b[i].x);
    EXPECT_EQ(a[i].variant, b[i].variant);
    expect_identical(a[i].result, b[i].result,
                     a[i].variant + "@x=" + std::to_string(a[i].x));
  }
}

TEST(Sweep, GridIndexMatchesNaiveEndToEnd) {
  // The sweep is the integration point of the whole repo: with the naive
  // scan swapped in for the grid, every point must still come out identical.
  sweep_spec grid = small_fig7_spec();
  sweep_spec naive = small_fig7_spec();
  naive.base.neighbor_index = "naive";
  const std::vector<sweep_point> a = run_sweep(grid);
  const std::vector<sweep_point> b = run_sweep(naive);
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    expect_identical(a[i].result, b[i].result, "index@" + a[i].variant);
  }
}

TEST(Sweep, SeedsUniqueAcrossTheGrid) {
  // The old base+rep scheme collided across x and variant; the hashed
  // scheme must give every (x, variant, rep) cell its own seed.
  std::set<std::uint64_t> seen;
  int count = 0;
  for (std::size_t xi = 0; xi < 10; ++xi) {
    for (std::size_t vi = 0; vi < 6; ++vi) {
      for (int rep = 0; rep < 10; ++rep) {
        seen.insert(sweep_run_seed(42, xi, vi, rep));
        ++count;
      }
    }
  }
  EXPECT_EQ(static_cast<int>(seen.size()), count);
  // Deterministic across processes/platforms and sensitive to the base seed.
  EXPECT_EQ(sweep_run_seed(1, 0, 0, 0), sweep_run_seed(1, 0, 0, 0));
  EXPECT_NE(sweep_run_seed(1, 0, 0, 0), sweep_run_seed(2, 0, 0, 0));
}

TEST(Sweep, AverageSingleRepPassesThrough) {
  run_result r;
  r.protocol = "rpcc";
  r.sim_time = 1800;
  r.total_messages = 12345;
  r.avg_query_latency_s = 0.125;
  r.avg_relay_peers = 3.75;
  expect_identical(average({r}), r, "single-rep passthrough");
}

TEST(Sweep, AverageRoundsCounterFieldsHalfUp) {
  run_result a;
  run_result b;
  a.total_messages = 1;
  b.total_messages = 2;  // mean 1.5 -> rounds half-up to 2
  a.queries_issued = 0;
  b.queries_issued = 1;  // mean 0.5 -> rounds half-up to 1
  a.updates = 10;
  b.updates = 10;
  a.avg_query_latency_s = 0.5;
  b.avg_query_latency_s = 1.0;
  const run_result avg = average({a, b});
  EXPECT_EQ(avg.total_messages, 2u);
  EXPECT_EQ(avg.queries_issued, 1u);
  EXPECT_EQ(avg.updates, 10u);
  EXPECT_DOUBLE_EQ(avg.avg_query_latency_s, 0.75);
  // Non-averaged fields come from the first repetition.
  EXPECT_EQ(avg.protocol, a.protocol);
}

TEST(Sweep, RenderSeriesCollapsesDuplicateXValues) {
  const std::vector<protocol_variant> variants = {
      {"A", "push", level_mix::strong_only()},
      {"B", "pull", level_mix::strong_only()}};
  run_result r1;
  r1.total_messages = 100;
  run_result r2;
  r2.total_messages = 999;  // duplicate (x, variant): first match must win
  run_result r3;
  r3.total_messages = 7;
  const std::vector<sweep_point> points = {
      {30, "A", r1}, {30, "A", r2}, {60, "A", r3}};
  const std::string table = render_series(
      points, "x", variants,
      [](const run_result& r) { return static_cast<double>(r.total_messages); },
      0);
  // One row per distinct x, first-match value for A, and variant B (which
  // has no points at all) renders as 0.
  EXPECT_NE(table.find("100"), std::string::npos);
  EXPECT_EQ(table.find("999"), std::string::npos);
  EXPECT_NE(table.find("7"), std::string::npos);
  int rows = 0;
  for (char c : table) rows += c == '\n';
  EXPECT_EQ(rows, 4);  // header + rule + two x rows
}

TEST(Sweep, RenderSeriesMissingVariantCellStaysZero) {
  const std::vector<protocol_variant> variants = {
      {"A", "push", level_mix::strong_only()},
      {"B", "pull", level_mix::strong_only()}};
  run_result ra;
  ra.total_messages = 5;
  const std::vector<sweep_point> points = {{10, "A", ra}};
  const std::string table = render_series(
      points, "x", variants,
      [](const run_result& r) { return static_cast<double>(r.total_messages); },
      1);
  // The B column exists in the header and its only cell reads 0.0.
  EXPECT_NE(table.find("B"), std::string::npos);
  EXPECT_NE(table.find("0.0"), std::string::npos);
  EXPECT_NE(table.find("5.0"), std::string::npos);
}

TEST(Sweep, RunBatchPreservesInputOrder) {
  scenario_params base;
  base.n_peers = 8;
  base.cache_num = 3;
  base.sim_time = 60;
  base.warmup = 0;
  base.invariants = false;
  std::vector<labelled_run> runs;
  for (std::uint64_t seed : {1u, 2u, 3u, 4u, 5u, 6u}) {
    scenario_params p = base;
    p.seed = seed;
    runs.push_back(
        labelled_run{"seed", p, {"push", "push", level_mix::strong_only()}});
  }
  const std::vector<run_result> serial = run_batch(runs, 1);
  const std::vector<run_result> parallel = run_batch(runs, 4);
  ASSERT_EQ(serial.size(), parallel.size());
  for (std::size_t i = 0; i < serial.size(); ++i) {
    expect_identical(serial[i], parallel[i], "batch[" + std::to_string(i) + "]");
  }
}

}  // namespace
}  // namespace manet
