// Failure injection, regression guards and edge cases across the stack.
#include <gtest/gtest.h>

#include "consistency/rpcc/rpcc_protocol.hpp"
#include "routing/aodv.hpp"
#include "scenario/scenario.hpp"
#include "test_util.hpp"

namespace manet {
namespace {

using manet::testing::rig;
using peer_role = rpcc_protocol::peer_role;

// --- Routing regression guards ---

TEST(AodvRegression, RrepForwardingDoesNotLoop) {
  // Dense mesh with heavy concurrent discovery traffic; a routing loop
  // (the bug fixed in install_route/on_rrep) multiplies RREP frames by the
  // TTL budget. Guard: RREP frames stay within a small factor of RREPs
  // originated.
  std::vector<vec2> pos;
  for (int y = 0; y < 4; ++y) {
    for (int x = 0; x < 4; ++x) {
      pos.push_back(vec2{150.0 * x, 150.0 * y});
    }
  }
  rig r(pos);
  r.route->set_delivery_handler([](node_id, const packet&) {});
  rng gen(3);
  for (int i = 0; i < 200; ++i) {
    const auto a = static_cast<node_id>(gen.uniform_int(16));
    const auto b = static_cast<node_id>(gen.uniform_int(16));
    if (a == b) continue;
    r.route->send(a, b, 150, nullptr, 64);
    r.run_for(0.5);
  }
  r.run_for(30.0);
  const auto& rrep = r.net->meter().counters(kind_rrep);
  ASSERT_GT(rrep.originated, 0u);
  EXPECT_LT(rrep.tx_frames, 8 * rrep.originated);
}

TEST(AodvRegression, RerrInvalidatesStaleRoute) {
  // 0-1-2 path; node 1 dies after a route is cached; the next send from 0
  // must not be silently blackholed forever: the route expires or a RERR
  // clears it, and with an alternate path traffic resumes.
  rig r({{0, 0}, {200, 0}, {400, 0}, {200, 150}});  // diamond via node 3
  int got = 0;
  r.route->set_delivery_handler([&](node_id, const packet&) { ++got; });
  r.route->send(0, 2, 150, nullptr, 64);
  r.run_for(5.0);
  ASSERT_EQ(got, 1);
  r.net->set_node_up(1, false);
  // Burst of sends: some may die on the stale route, but recovery must
  // happen well before route_lifetime expires twice.
  for (int i = 0; i < 10; ++i) {
    r.route->send(0, 2, 150, nullptr, 64);
    r.run_for(8.0);
  }
  EXPECT_GE(got, 5);
}

TEST(AodvRegression, NoTrafficAfterQueueDrains) {
  rig r = rig::line(4);
  r.route->set_delivery_handler([](node_id, const packet&) {});
  r.route->send(0, 3, 150, nullptr, 64);
  r.run_for(30.0);
  const auto frames = r.net->meter().total_tx_frames();
  r.run_for(120.0);  // idle network: absolutely nothing may transmit
  EXPECT_EQ(r.net->meter().total_tx_frames(), frames);
}

// --- RPCC failure injection ---

rpcc_params lenient() {
  rpcc_params p;
  p.ttn = 15.0;
  p.ttr = 20.0;
  p.ttp = 60.0;
  p.invalidation_ttl = 2;
  p.poll_timeout = 0.5;
  p.coeff.window = 10.0;
  p.coeff.mu_car = 1.1;
  p.coeff.mu_cs = 0.0;
  p.coeff.mu_ce = 0.0;
  return p;
}

TEST(RpccFailure, ParkedPollServedAfterInvalidation) {
  rig r = rig::line(5);
  auto ctx = r.make_context(64, 256, 60.0);
  rpcc_params p = lenient();
  p.ttr = 5.0;  // far below ttn: relays spend most time "expired"
  p.poll_timeout = 30.0;  // asker waits patiently: parked path must deliver
  p.pending_poll_max_wait = 30.0;
  rpcc_protocol proto(ctx, p);
  proto.start();
  r.run_for(60.0);
  ASSERT_EQ(proto.role_of(2, 0), peer_role::relay);
  // Poll right after TTR lapsed: relay parks it until the next TTN tick.
  proto.on_query(4, 0, consistency_level::strong);
  r.run_for(20.0);  // covers the next invalidation
  EXPECT_EQ(r.qlog->answered(), 1u);
  EXPECT_EQ(r.qlog->stats(consistency_level::strong).validated, 1u);
  // The answer took roughly until the next TTN tick, not a poll timeout.
  EXPECT_GT(r.qlog->totals().latency.mean(), 0.5);
}

TEST(RpccFailure, PollBackoffSuppressesFloodStorms) {
  rig r({{0, 0}, {2000, 0}});  // node 1 permanently isolated from source 0
  auto ctx = r.make_context(64, 256, 60.0);
  rpcc_params p = lenient();
  p.poll_failure_backoff = 60.0;
  rpcc_protocol proto(ctx, p);
  proto.start();
  proto.on_query(1, 0, consistency_level::strong);
  r.run_for(10.0);
  const auto polls_first = proto.polls_sent();
  EXPECT_GT(polls_first, 0u);
  // Queries inside the backoff window answer locally with zero new polls.
  for (int i = 0; i < 5; ++i) {
    proto.on_query(1, 0, consistency_level::strong);
    r.run_for(2.0);
  }
  EXPECT_EQ(proto.polls_sent(), polls_first);
  EXPECT_EQ(r.qlog->answered(), 6u);
}

TEST(RpccFailure, RelayResyncAfterDownGetNew) {
  // §4.5: a relay that was disconnected while the source modified its item
  // must resync via GET_NEW/SEND_NEW on the next INVALIDATION it hears, and
  // flush polls parked meanwhile with the *new* version.
  rig r = rig::line(5);
  auto ctx = r.make_context(64, 256, 60.0);
  rpcc_params p = lenient();
  p.ttr = 20.0;
  p.poll_timeout = 30.0;  // asker waits: the parked path must deliver
  p.pending_poll_max_wait = 30.0;
  rpcc_protocol proto(ctx, p);
  proto.start();
  r.run_for(60.0);
  ASSERT_EQ(proto.role_of(2, 0), peer_role::relay);
  r.net->set_node_up(2, false);
  r.run_for(25.0);  // longer than TTR: the relay's window lapses while away
  r.registry.bump(0, r.sim.now());
  proto.on_update(0);  // source modifies the item while the relay is down
  r.run_for(5.0);
  r.net->set_node_up(2, true);
  proto.on_node_reconnect(2);  // scenario wires churn-up to this
  const auto get_new_before = r.net->meter().counters(kind_get_new).originated;
  proto.on_query(4, 0, consistency_level::strong);
  r.run_for(40.0);  // covers the next TTN tick: GET_NEW -> SEND_NEW -> flush
  EXPECT_GT(r.net->meter().counters(kind_get_new).originated, get_new_before);
  EXPECT_EQ(r.qlog->answered(), 1u);
  EXPECT_EQ(r.qlog->stats(consistency_level::strong).validated, 1u);
  EXPECT_EQ(r.qlog->stats(consistency_level::strong).stale_answers, 0u);
  const cached_copy* c = r.stores[4].find(0);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->version, 1u);  // served the post-resync version
}

TEST(RpccFailure, PollBackoffClearedOnReconnect) {
  rig r({{0, 0}, {2000, 0}});  // node 1 isolated: polls can only fail
  auto ctx = r.make_context(64, 256, 60.0);
  rpcc_params p = lenient();
  p.poll_failure_backoff = 120.0;
  rpcc_protocol proto(ctx, p);
  proto.start();
  proto.on_query(1, 0, consistency_level::strong);
  r.run_for(10.0);
  const auto polls_first = proto.polls_sent();
  EXPECT_GT(polls_first, 0u);
  proto.on_query(1, 0, consistency_level::strong);
  r.run_for(5.0);
  ASSERT_EQ(proto.polls_sent(), polls_first);  // backoff holds
  // A reconnect means the old failure says nothing about the new topology:
  // the backoff resets and the next SC query probes the network again.
  proto.on_node_reconnect(1);
  proto.on_query(1, 0, consistency_level::strong);
  r.run_for(5.0);
  EXPECT_GT(proto.polls_sent(), polls_first);
}

TEST(RpccFailure, SourceChurnPausesInvalidations) {
  rig r = rig::line(3);
  auto ctx = r.make_context(64, 256, 60.0);
  rpcc_protocol proto(ctx, lenient());
  proto.start();
  r.run_for(40.0);
  const auto before = r.net->meter().counters(kind_invalidation).originated;
  r.net->set_node_up(0, false);
  r.run_for(60.0);
  // Items 1 and 2 keep flooding; item 0 stops.
  const auto during = r.net->meter().counters(kind_invalidation).originated - before;
  EXPECT_GT(during, 0u);
  EXPECT_LE(during, 10u);  // 2 items x 4 ticks (3 live items would be ~12)
  r.net->set_node_up(0, true);
  r.run_for(30.0);
  EXPECT_GT(r.net->meter().counters(kind_invalidation).originated, before + during);
}

TEST(RpccFailure, LossyChannelStillConverges) {
  rig r(
      {
          {0, 0},
          {150, 0},
          {300, 0},
          {150, 150},
      },
      250.0, 42, false, /*loss=*/0.2);
  auto ctx = r.make_context(64, 256, 60.0);
  rpcc_protocol proto(ctx, lenient());
  proto.start();
  r.run_for(120.0);
  r.registry.bump(0, r.sim.now());
  proto.on_update(0);
  r.run_for(120.0);
  // Despite 20% frame loss, invalidation retries and GET_NEW converge the
  // relays onto the new version.
  int fresh_relays = 0;
  for (node_id n = 1; n <= 3; ++n) {
    if (proto.role_of(n, 0) != peer_role::relay) continue;
    const cached_copy* c = r.stores[n].find(0);
    if (c != nullptr && c->version == 1) ++fresh_relays;
  }
  EXPECT_GT(fresh_relays, 0);
}

TEST(RpccFailure, StaleApplyAckAfterDemotionIgnored) {
  rig r = rig::line(3);
  auto ctx = r.make_context(64, 256, 60.0);
  rpcc_protocol proto(ctx, lenient());
  proto.start();
  r.run_for(60.0);
  ASSERT_EQ(proto.role_of(1, 0), peer_role::relay);
  // Force back to cache directly through the public path: a relay whose
  // coefficients lapse is demoted at the next window; here we simulate the
  // simplest equivalent — the node flaps and a strict tracker would demote
  // it. With the lenient tracker, verify instead that an UPDATE received as
  // a relay refreshes rather than re-promotes (idempotent transitions).
  const auto promotions = proto.promotions();
  r.registry.bump(0, r.sim.now());
  proto.on_update(0);
  r.run_for(20.0);
  EXPECT_EQ(proto.promotions(), promotions);  // no double promotion
  EXPECT_EQ(proto.role_of(1, 0), peer_role::relay);
}

// --- Scenario-level failure sweeps ---

class ChurnSweep : public ::testing::TestWithParam<double> {};

TEST_P(ChurnSweep, SystemSurvivesAggressiveChurn) {
  scenario_params p;
  p.n_peers = 25;
  p.area_width = p.area_height = 1000;
  p.sim_time = 400.0;
  p.switch_probability = GetParam();
  p.mean_down_time = 60.0;
  p.seed = 17;
  scenario sc(p, "rpcc");
  const run_result r = sc.run();
  // Even with every consideration toggling the node, most queries answer.
  EXPECT_GT(r.queries_answered, r.queries_issued / 2);
  EXPECT_EQ(r.total_messages, r.app_messages + r.routing_messages);
}

INSTANTIATE_TEST_SUITE_P(Churn, ChurnSweep, ::testing::Values(0.0, 0.3, 1.0));

TEST(MixedWorkload, HybridMixCountsPerLevel) {
  scenario_params p;
  p.n_peers = 25;
  p.area_width = p.area_height = 1000;
  p.sim_time = 400.0;
  p.mix = level_mix::hybrid();
  p.seed = 19;
  scenario sc(p, "rpcc");
  sc.run();
  const auto& s = sc.qlog();
  EXPECT_GT(s.stats(consistency_level::strong).issued, 0u);
  EXPECT_GT(s.stats(consistency_level::delta).issued, 0u);
  EXPECT_GT(s.stats(consistency_level::weak).issued, 0u);
  // Weak answers are instantaneous by construction.
  EXPECT_LT(s.stats(consistency_level::weak).latency.mean(), 1e-9);
  // Strong latency dominates delta latency which dominates weak.
  EXPECT_GE(s.stats(consistency_level::strong).latency.mean(),
            s.stats(consistency_level::delta).latency.mean());
}

TEST(MacBehavior, BackoffStaysWithinConfiguredBound) {
  rig r({{0, 0}, {100, 0}});
  std::vector<double> arrivals;
  r.net->set_dispatcher([&](node_id, node_id, const packet&) {
    arrivals.push_back(r.sim.now());
  });
  for (int i = 0; i < 50; ++i) {
    packet p;
    p.uid = r.net->next_uid();
    p.kind = 150;
    p.src = 0;
    p.dst = 1;
    p.size_bytes = 10;
    r.net->send_frame(0, 1, std::move(p));
    r.run_for(1.0);  // one frame at a time
    ASSERT_EQ(arrivals.size(), static_cast<std::size_t>(i + 1));
    // tx_time(10B) ~ 0.54 ms + backoff <= 2 ms + propagation.
    const double delay = arrivals.back() - (r.sim.now() - 1.0);
    EXPECT_GT(delay, 0.0004);
    EXPECT_LT(delay, 0.004);
  }
}

TEST(NodeBehavior, EnergyFractionClampsAtZero) {
  rig r({{0, 0}});
  node& n = r.net->at(0);
  n.drain(n.energy_max() * 2);
  EXPECT_DOUBLE_EQ(n.energy_joules(), 0.0);
  EXPECT_DOUBLE_EQ(n.energy_fraction(), 0.0);
}

}  // namespace
}  // namespace manet
