// Observability layer: metric registry, time-series sampler, profiler,
// scenario wiring, sweep output suffixing, and the recovery-tracker
// never-recovered edge case.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <iterator>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

#include "fault/fault_plan.hpp"
#include "metrics/recovery_tracker.hpp"
#include "obs/prof.hpp"
#include "obs/registry.hpp"
#include "obs/sampler.hpp"
#include "scenario/scenario.hpp"
#include "scenario/sweep.hpp"
#include "sim/simulator.hpp"
#include "sim/timer.hpp"

namespace manet {
namespace {

// --- metric registry -------------------------------------------------------

TEST(MetricRegistry, OwnedAndCallbackMetricsSnapshotSorted) {
  metric_registry reg;
  std::uint64_t* polls = reg.counter("rpcc.polls_sent");
  *polls = 7;
  reg.counter("net.tx_frames", [] { return std::uint64_t{42}; });
  reg.gauge("cache.copies", [] { return 3.5; });
  EXPECT_EQ(reg.size(), 3u);

  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  // std::map storage: sorted by name regardless of registration order.
  EXPECT_EQ(snap[0].first, "cache.copies");
  EXPECT_EQ(snap[0].second, 3.5);
  EXPECT_EQ(snap[1].first, "net.tx_frames");
  EXPECT_EQ(snap[1].second, 42.0);
  EXPECT_EQ(snap[2].first, "rpcc.polls_sent");
  EXPECT_EQ(snap[2].second, 7.0);
}

TEST(MetricRegistry, SnapshotPrefixSelectsNamespace) {
  metric_registry reg;
  reg.counter("net.tx_frames", [] { return std::uint64_t{1}; });
  reg.counter("net.drops", [] { return std::uint64_t{2}; });
  reg.counter("route.tx_frames", [] { return std::uint64_t{3}; });
  const auto net = reg.snapshot_prefix("net.");
  ASSERT_EQ(net.size(), 2u);
  EXPECT_EQ(net[0].first, "net.drops");
  EXPECT_EQ(net[1].first, "net.tx_frames");
  EXPECT_TRUE(reg.snapshot_prefix("cache.").empty());
}

TEST(MetricRegistry, DoubleRegistrationThrows) {
  metric_registry reg;
  reg.counter("rpcc.polls_sent");
  EXPECT_THROW(reg.counter("rpcc.polls_sent"), std::runtime_error);
  EXPECT_THROW(reg.gauge("rpcc.polls_sent", [] { return 0.0; }),
               std::runtime_error);
  EXPECT_THROW(reg.counter(""), std::runtime_error);
}

TEST(MetricRegistry, ToJsonIsSortedAndStable) {
  metric_registry reg;
  reg.gauge("b.two", [] { return 2.0; });
  reg.gauge("a.one", [] { return 1.0; });
  const std::string json = reg.to_json();
  const auto a = json.find("\"a.one\"");
  const auto b = json.find("\"b.two\"");
  ASSERT_NE(a, std::string::npos);
  ASSERT_NE(b, std::string::npos);
  EXPECT_LT(a, b);
  EXPECT_EQ(json.front(), '{');
}

// --- metric handles --------------------------------------------------------

TEST(MetricRegistry, HandleCountersBumpAndSnapshotSorted) {
  metric_registry reg;
  const metric_registry::counter_handle frames =
      reg.register_counter("net.dispatched_frames");
  const metric_registry::counter_handle drops =
      reg.register_counter("obs.trace_dropped");
  reg.gauge("cache.copies", [] { return 3.5; });
  reg.bump(frames);
  reg.bump(frames, 41);
  reg.bump(drops, 2);
  EXPECT_EQ(reg.value(frames), 42u);
  EXPECT_EQ(reg.value(drops), 2u);

  // Handle counters obey the same sorted-snapshot contract as the rest.
  const auto snap = reg.snapshot();
  ASSERT_EQ(snap.size(), 3u);
  EXPECT_EQ(snap[0].first, "cache.copies");
  EXPECT_EQ(snap[1].first, "net.dispatched_frames");
  EXPECT_EQ(snap[1].second, 42.0);
  EXPECT_EQ(snap[2].first, "obs.trace_dropped");
  EXPECT_EQ(snap[2].second, 2.0);
}

TEST(MetricRegistry, HandleRegistrationCollidesWithOtherStyles) {
  metric_registry reg;
  reg.register_counter("net.dispatched_frames");
  EXPECT_THROW(reg.register_counter("net.dispatched_frames"),
               std::runtime_error);
  EXPECT_THROW(reg.counter("net.dispatched_frames"), std::runtime_error);
  reg.counter("net.tx_frames");
  EXPECT_THROW(reg.register_counter("net.tx_frames"), std::runtime_error);
}

TEST(MetricRegistry, HandlesStayValidAcrossManyRegistrations) {
  // Handles are dense indices, not pointers: growth of the backing store
  // must never invalidate an earlier handle.
  metric_registry reg;
  const metric_registry::counter_handle first = reg.register_counter("m.000");
  reg.bump(first);
  std::vector<metric_registry::counter_handle> handles;
  for (int i = 1; i < 200; ++i) {
    char name[16];
    std::snprintf(name, sizeof name, "m.%03d", i);
    handles.push_back(reg.register_counter(name));
  }
  reg.bump(first, 9);
  reg.bump(handles.back(), 5);
  EXPECT_EQ(reg.value(first), 10u);
  EXPECT_EQ(reg.value(handles.back()), 5u);
  EXPECT_EQ(reg.snapshot().front().second, 10.0);
}

// --- time-series sampler ---------------------------------------------------

TEST(Sampler, WindowAlignmentIncludesPartialTail) {
  simulator sim(1);
  time_series_sampler sampler([&] { return sim.now(); });
  periodic_timer ticker(sim, 10.0, [&] { sampler.tick(); });
  std::uint64_t bumps = 0;
  std::uint64_t twice = 0;
  sampler.add_gauge("clock", [&] { return sim.now(); });
  sampler.add_delta("bumps", [&] { return bumps; });
  sampler.add_ratio("half", [&] { return bumps; }, [&] { return twice; });
  // 24 counter bumps at t = 0.5, 1.5, ..., 23.5 — off the window
  // boundaries, so each window's delta is unambiguous.
  for (int i = 0; i < 24; ++i) {
    sim.schedule_at(0.5 + i, [&] {
      bumps += 1;
      twice += 2;
    });
  }
  sampler.start();
  ticker.start();
  sim.run_until(25.0);
  ticker.stop();
  sampler.finish();  // closes the partial window [20, 25)

  const auto& ws = sampler.windows();
  ASSERT_EQ(ws.size(), 3u);
  EXPECT_DOUBLE_EQ(ws[0].t0, 0.0);
  EXPECT_DOUBLE_EQ(ws[0].t1, 10.0);
  EXPECT_DOUBLE_EQ(ws[1].t1, 20.0);
  EXPECT_DOUBLE_EQ(ws[2].t0, 20.0);
  EXPECT_DOUBLE_EQ(ws[2].t1, 25.0);

  ASSERT_EQ(sampler.names().size(), 3u);
  EXPECT_EQ(sampler.names()[0], "clock");
  // Gauge reads at window close; deltas are per-window increases.
  EXPECT_DOUBLE_EQ(ws[0].values[0], 10.0);
  EXPECT_DOUBLE_EQ(ws[2].values[0], 25.0);
  EXPECT_DOUBLE_EQ(ws[0].values[1], 10.0);
  EXPECT_DOUBLE_EQ(ws[1].values[1], 10.0);
  EXPECT_DOUBLE_EQ(ws[2].values[1], 4.0);
  // Ratio = delta(num)/delta(den) per window.
  EXPECT_DOUBLE_EQ(ws[0].values[2], 0.5);
  EXPECT_DOUBLE_EQ(ws[2].values[2], 0.5);

  // finish() is idempotent: a second call must not add a zero-length window.
  sampler.finish();
  EXPECT_EQ(sampler.windows().size(), 3u);
  EXPECT_EQ(sampler.windows_dropped(), 0u);
}

TEST(Sampler, RatioIsZeroWhenDenominatorDidNotMove) {
  simulator sim(1);
  time_series_sampler sampler([&] { return sim.now(); });
  periodic_timer ticker(sim, 5.0, [&] { sampler.tick(); });
  std::uint64_t num = 3;
  const std::uint64_t den = 9;
  sampler.add_ratio("r", [&] { return num; }, [&] { return den; });
  sampler.start();
  ticker.start();
  sim.run_until(5.0);
  ASSERT_EQ(sampler.windows().size(), 1u);
  EXPECT_DOUBLE_EQ(sampler.windows()[0].values[0], 0.0);
}

TEST(Sampler, RingBufferEvictsOldestAndCounts) {
  simulator sim(1);
  time_series_sampler sampler([&] { return sim.now(); }, /*capacity=*/2);
  periodic_timer ticker(sim, 1.0, [&] { sampler.tick(); });
  sampler.add_gauge("clock", [&] { return sim.now(); });
  sampler.start();
  ticker.start();
  sim.run_until(5.0);
  EXPECT_EQ(sampler.windows().size(), 2u);
  EXPECT_EQ(sampler.windows_dropped(), 3u);
  // Survivors are the newest windows.
  EXPECT_DOUBLE_EQ(sampler.windows().back().t1, 5.0);
}

TEST(Sampler, WriteJsonlRoundTrips) {
  const std::string path = ::testing::TempDir() + "/manet_series_unit.jsonl";
  simulator sim(1);
  time_series_sampler sampler([&] { return sim.now(); });
  periodic_timer ticker(sim, 10.0, [&] { sampler.tick(); });
  sampler.add_gauge("queue_depth", [] { return 4.0; });
  sampler.start();
  ticker.start();
  sim.run_until(20.0);
  ASSERT_TRUE(sampler.write_jsonl(path));
  std::ifstream in(path);
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_NE(lines[0].find("\"t0\":"), std::string::npos);
  EXPECT_NE(lines[0].find("\"queue_depth\":"), std::string::npos);
  std::remove(path.c_str());

  EXPECT_FALSE(sampler.write_jsonl("/nonexistent_dir/series.jsonl"));
}

TEST(Sampler, RejectsNullClockAndZeroCapacity) {
  simulator sim(1);
  EXPECT_THROW(time_series_sampler(std::function<sim_time()>{}),
               std::runtime_error);
  EXPECT_THROW(time_series_sampler([&] { return sim.now(); }, 0),
               std::runtime_error);
}

TEST(Sampler, TickBeforeStartIsIgnored) {
  simulator sim(1);
  time_series_sampler sampler([&] { return sim.now(); });
  sampler.add_gauge("g", [] { return 1.0; });
  sampler.tick();  // not started: must not record a window
  EXPECT_TRUE(sampler.windows().empty());
}

// --- profiler --------------------------------------------------------------

TEST(Profiler, AccumulatesPerSection) {
  profiler prof;
  prof.add(profiler::section::event_dispatch, 100);
  prof.add(profiler::section::event_dispatch, 300);
  prof.add(profiler::section::neighbor_query, 50);
  EXPECT_EQ(prof.calls(profiler::section::event_dispatch), 2u);
  EXPECT_EQ(prof.total_ns(profiler::section::event_dispatch), 400u);
  EXPECT_EQ(prof.calls(profiler::section::protocol_handler), 0u);
  const std::string report = prof.report();
  EXPECT_NE(report.find("event_dispatch"), std::string::npos);
  EXPECT_NE(report.find("neighbor_query"), std::string::npos);
}

TEST(Profiler, ScopeTimesAndNullIsNoop) {
  profiler prof;
  { prof_scope s(&prof, profiler::section::protocol_handler); }
  EXPECT_EQ(prof.calls(profiler::section::protocol_handler), 1u);
  // Null profiler: the scope must be a safe no-op.
  { prof_scope s(nullptr, profiler::section::protocol_handler); }
}

TEST(Profiler, ClockIsMonotonic) {
  const std::uint64_t a = prof_now_ns();
  const std::uint64_t b = prof_now_ns();
  EXPECT_LE(a, b);
}

TEST(Profiler, NestedScopesBuildTreeAndAggregateAcrossKeys) {
  profiler prof;
  // Two dispatches; inside each, keyed handler frames — the shape the
  // scenario produces (dispatch → protocol_handler[kind]).
  for (int pass = 0; pass < 2; ++pass) {
    const std::size_t d = prof.enter(profiler::section::event_dispatch);
    const std::size_t h1 = prof.enter(profiler::section::protocol_handler,
                                      /*key=*/100);
    prof.leave(h1, 300);
    const std::size_t h2 = prof.enter(profiler::section::protocol_handler,
                                      /*key=*/101);
    prof.leave(h2, 200);
    prof.leave(d, 1000);
  }
  // Flat per-section aggregates sum over every tree frame of that section.
  EXPECT_EQ(prof.calls(profiler::section::event_dispatch), 2u);
  EXPECT_EQ(prof.calls(profiler::section::protocol_handler), 4u);
  EXPECT_EQ(prof.total_ns(profiler::section::protocol_handler), 1000u);

  prof.set_key_namer([](std::uint32_t key) {
    return key == 100 ? std::string("POLL") : std::string();
  });
  const std::string report = prof.report();
  // Children render indented under their parent, keyed frames carry the
  // namer's label (or the key_<id> fallback for unnamed keys).
  EXPECT_NE(report.find("protocol_handler[POLL]"), std::string::npos);
  EXPECT_NE(report.find("protocol_handler[key_101]"), std::string::npos);
  EXPECT_LT(report.find("event_dispatch"),
            report.find("protocol_handler[POLL]"));
}

TEST(Profiler, StacklessAddStaysAtRootAndMaxTracked) {
  profiler prof;
  const std::size_t d = prof.enter(profiler::section::event_dispatch);
  prof.add(profiler::section::neighbor_query, 500);  // root, not under d
  prof.leave(d, 100);
  prof.add(profiler::section::neighbor_query, 900);
  EXPECT_EQ(prof.calls(profiler::section::neighbor_query), 2u);
  EXPECT_EQ(prof.total_ns(profiler::section::neighbor_query), 1400u);
  const std::string report = prof.report();
  // neighbor_query at root → not indented under event_dispatch.
  EXPECT_NE(report.find("\n  neighbor_query"), std::string::npos);
}

TEST(Profiler, WritesChromeTraceWithNestedEvents) {
  const std::string path = ::testing::TempDir() + "/manet_prof.json";
  profiler prof;
  const std::size_t d = prof.enter(profiler::section::event_dispatch);
  const std::size_t h = prof.enter(profiler::section::protocol_handler, 100);
  prof.leave(h, 400);
  prof.leave(d, 1000);
  prof.set_key_namer([](std::uint32_t) { return std::string("POLL"); });
  ASSERT_TRUE(prof.write_chrome_trace(path));
  std::ifstream in(path);
  std::string json((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("\"ph\":\"X\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"event_dispatch\""), std::string::npos);
  EXPECT_NE(json.find("\"name\":\"protocol_handler[POLL]\""),
            std::string::npos);
  EXPECT_NE(json.find("\"calls\":1"), std::string::npos);
  std::remove(path.c_str());

  EXPECT_FALSE(prof.write_chrome_trace("/nonexistent_dir/prof.json"));
}

// --- scenario wiring -------------------------------------------------------

TEST(ObsScenario, RunResultCarriesMetricSnapshot) {
  scenario_params p;
  p.n_peers = 10;
  p.sim_time = 60.0;
  p.seed = 5;
  scenario sc(p, "pull");
  const run_result r = sc.run();
  ASSERT_FALSE(r.metrics.empty());
  auto value_of = [&](const std::string& name) -> const double* {
    for (const auto& [n, v] : r.metrics) {
      if (n == name) return &v;
    }
    return nullptr;
  };
  ASSERT_NE(value_of("net.tx_frames"), nullptr);
  ASSERT_NE(value_of("query.issued"), nullptr);
  ASSERT_NE(value_of("pull.polls_sent"), nullptr);
  EXPECT_GT(*value_of("net.tx_frames"), 0.0);
  EXPECT_EQ(*value_of("net.tx_frames"),
            static_cast<double>(r.total_messages));
  // Sorted-name order is part of the snapshot contract.
  for (std::size_t i = 1; i < r.metrics.size(); ++i) {
    EXPECT_LT(r.metrics[i - 1].first, r.metrics[i].first);
  }
}

TEST(ObsScenario, ProtocolNamespacesFollowProtocol) {
  scenario_params p;
  p.n_peers = 8;
  p.sim_time = 40.0;
  p.seed = 5;
  // The "push_pull" hybrid registers under the hybrid.* namespace.
  const std::pair<const char*, const char*> protos[] = {
      {"rpcc", "rpcc."}, {"push", "push."}, {"push_pull", "hybrid."}};
  for (const auto& [proto, ns] : protos) {
    scenario sc(p, proto);
    const run_result r = sc.run();
    const std::string prefix = ns;
    bool found = false;
    for (const auto& [n, v] : r.metrics) {
      if (n.rfind(prefix, 0) == 0) found = true;
    }
    EXPECT_TRUE(found) << "no " << prefix << "* metric registered";
  }
}

TEST(ObsScenario, SeriesFileWrittenWithRegisteredColumns) {
  const std::string path = ::testing::TempDir() + "/manet_series_scn.jsonl";
  scenario_params p;
  p.n_peers = 10;
  p.sim_time = 60.0;
  p.seed = 5;
  p.series_file = path;
  p.series_interval = 10.0;
  scenario sc(p, "rpcc");
  sc.run();
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string line;
  std::vector<std::string> lines;
  while (std::getline(in, line)) lines.push_back(line);
  // 60 s at 10 s per window: six windows, the last closed by finish().
  ASSERT_EQ(lines.size(), 6u);
  for (const char* col :
       {"relay_peers", "hit_ratio", "stale_rate", "pending_polls",
        "queue_depth", "queue_raw_size", "queue_compactions"}) {
    EXPECT_NE(lines[0].find(col), std::string::npos) << col;
  }
  std::remove(path.c_str());
}

TEST(ObsScenario, TraceCountersExposedAsMetrics) {
  const std::string path = ::testing::TempDir() + "/manet_obs_metrics.bin";
  scenario_params p;
  p.n_peers = 10;
  p.sim_time = 60.0;
  p.seed = 5;
  auto value_of = [](const run_result& r,
                     const std::string& name) -> const double* {
    for (const auto& [n, v] : r.metrics) {
      if (n == name) return &v;
    }
    return nullptr;
  };
  {
    // Tracing off: the counters still exist (matrix [check] expressions on
    // obs.trace_dropped must resolve on every cell) and read zero.
    scenario sc(p, "rpcc");
    const run_result r = sc.run();
    const double* events = value_of(r, "obs.trace_events");
    const double* dropped = value_of(r, "obs.trace_dropped");
    ASSERT_NE(events, nullptr);
    ASSERT_NE(dropped, nullptr);
    EXPECT_EQ(*events, 0.0);
    EXPECT_EQ(*dropped, 0.0);
  }
  {
    p.trace_file = path;
    p.trace_format = "binary";
    scenario sc(p, "rpcc");
    const run_result r = sc.run();
    const double* events = value_of(r, "obs.trace_events");
    const double* dropped = value_of(r, "obs.trace_dropped");
    ASSERT_NE(events, nullptr);
    ASSERT_NE(dropped, nullptr);
    EXPECT_GT(*events, 0.0);
    EXPECT_EQ(*dropped, 0.0);
    EXPECT_EQ(*events, static_cast<double>(sc.trace()->events_written()));
  }
  std::remove(path.c_str());
}

TEST(ObsScenario, DispatchedFramesMetricCountsDeliveries) {
  scenario_params p;
  p.n_peers = 10;
  p.sim_time = 60.0;
  p.seed = 5;
  scenario sc(p, "rpcc");
  const run_result r = sc.run();
  const double* dispatched = nullptr;
  const double* rx = nullptr;
  for (const auto& [n, v] : r.metrics) {
    if (n == "net.dispatched_frames") dispatched = &v;
    if (n == "net.rx_frames") rx = &v;
  }
  ASSERT_NE(dispatched, nullptr);
  ASSERT_NE(rx, nullptr);
  EXPECT_GT(*dispatched, 0.0);
  // Every dispatched frame was metered as received by some node.
  EXPECT_EQ(*dispatched, *rx);
}

TEST(ObsScenario, ProfileFlagProducesReport) {
  scenario_params p;
  p.n_peers = 8;
  p.sim_time = 30.0;
  p.seed = 5;
  p.profile = true;
  scenario sc(p, "pull");
  sc.run();
  ASSERT_NE(sc.profile(), nullptr);
  EXPECT_GT(sc.profile()->calls(profiler::section::event_dispatch), 0u);
  EXPECT_NE(sc.extra_report().find("event_dispatch"), std::string::npos);
}

TEST(ObsScenario, ProfileOutWritesKeyedChromeTrace) {
  const std::string path = ::testing::TempDir() + "/manet_profile_out.json";
  scenario_params p;
  p.n_peers = 10;
  p.sim_time = 60.0;
  p.seed = 5;
  p.profile_out = path;  // enables the profiler even without profile=true
  scenario sc(p, "rpcc");
  sc.run();
  ASSERT_NE(sc.profile(), nullptr);
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::string json((std::istreambuf_iterator<char>(in)),
                   std::istreambuf_iterator<char>());
  EXPECT_NE(json.find("\"traceEvents\""), std::string::npos);
  EXPECT_NE(json.find("event_dispatch"), std::string::npos);
  // Handler frames are keyed by packet kind and named through the traffic
  // meter, so the export shows protocol packet names, not raw ids.
  EXPECT_NE(json.find("protocol_handler[POLL]"), std::string::npos);
  std::remove(path.c_str());
}

// --- sweep output suffixing ------------------------------------------------

TEST(SweepOutputPath, InsertsTagBeforeExtension) {
  EXPECT_EQ(sweep_output_path("trace.jsonl", "x0-pull-r1"),
            "trace-x0-pull-r1.jsonl");
  EXPECT_EQ(sweep_output_path("out/series.jsonl", "run3"),
            "out/series-run3.jsonl");
}

TEST(SweepOutputPath, HandlesMissingExtensionAndDottedDirs) {
  EXPECT_EQ(sweep_output_path("trace", "t"), "trace-t");
  // The dot belongs to a directory, not an extension.
  EXPECT_EQ(sweep_output_path("runs.d/trace", "t"), "runs.d/trace-t");
  EXPECT_EQ(sweep_output_path("", "t"), "");
}

TEST(SweepOutputPath, SanitizesTag) {
  EXPECT_EQ(sweep_output_path("t.jsonl", "x 0/pull:r#1"),
            "t-x-0-pull-r-1.jsonl");
}

// --- recovery tracker: never-recovered episodes ----------------------------

TEST(RecoveryTracker, NeverRecoveredEpisodeStaysOutOfMeans) {
  simulator sim(1);
  recovery_tracker::probes probes;
  probes.converged = [] { return false; };  // never reconverges
  probes.relays = [] { return std::size_t{3}; };
  recovery_tracker rt(sim, probes, 1.0);

  rt.on_fault_begin(0, "crash n3");
  sim.schedule_at(5.0, [&] { rt.on_fault_end(0); });
  sim.run_until(50.0);

  ASSERT_EQ(rt.episode_count(), 1u);
  EXPECT_LT(rt.episodes()[0].reconverge_s, 0.0);  // open at sim end
  EXPECT_EQ(rt.recovered_count(), 0u);
  // The open episode must not pollute the mean: no recovered episodes
  // means 0, not a garbage average over the -1 sentinel.
  EXPECT_DOUBLE_EQ(rt.mean_reconvergence_s(), 0.0);
  // Relay repair did succeed (relays never dipped), independently of
  // convergence.
  EXPECT_GT(rt.mean_relay_repair_s(), 0.0);
}

TEST(RecoveryTracker, RecoveredEpisodeMeasuredFromHeal) {
  simulator sim(1);
  recovery_tracker::probes probes;
  probes.converged = [&] { return sim.now() > 10.0; };
  probes.relays = [] { return std::size_t{3}; };
  recovery_tracker rt(sim, probes, 1.0);

  rt.on_fault_begin(0, "partition a|b");
  sim.schedule_at(5.0, [&] { rt.on_fault_end(0); });
  sim.run_until(50.0);

  ASSERT_EQ(rt.recovered_count(), 1u);
  // Heal at t=5, probes at 6,7,...; first converged probe at t=11.
  EXPECT_DOUBLE_EQ(rt.mean_reconvergence_s(), 6.0);
  const std::string report = rt.report();
  EXPECT_NE(report.find("reconverge"), std::string::npos);
}

}  // namespace
}  // namespace manet
