// JSONL trace writer and its scenario wiring.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "metrics/trace_writer.hpp"
#include "scenario/scenario.hpp"

namespace manet {
namespace {

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

int count_event(const std::vector<std::string>& lines, const std::string& ev) {
  int n = 0;
  const std::string needle = "\"ev\":\"" + ev + "\"";
  for (const auto& l : lines) {
    if (l.find(needle) != std::string::npos) ++n;
  }
  return n;
}

TEST(TraceWriter, WritesWellFormedLines) {
  const std::string path = ::testing::TempDir() + "/manet_trace_unit.jsonl";
  {
    trace_writer tw(path);
    traffic_meter meter;
    meter.register_kind(150, "TEST_KIND");
    packet p;
    p.kind = 150;
    p.src = 7;
    p.hops = 2;
    p.size_bytes = 64;
    tw.record_rx(1.5, 3, 2, p, meter);
    tw.record_state(2.0, 5, false);
    tw.record_query(3.0, 4, 9, consistency_level::strong);
    tw.record_update(4.0, 9, 2);
    tw.record_position(5.0, 1, 100.5, 200.25);
    EXPECT_EQ(tw.events_written(), 5u);
  }
  const auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 5u);
  for (const auto& l : lines) {
    EXPECT_EQ(l.front(), '{');
    EXPECT_EQ(l.back(), '}');
    EXPECT_NE(l.find("\"t\":"), std::string::npos);
  }
  EXPECT_NE(lines[0].find("TEST_KIND"), std::string::npos);
  EXPECT_NE(lines[1].find("\"down\""), std::string::npos);
  EXPECT_NE(lines[2].find("\"SC\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(TraceWriter, ThrowsOnUnwritablePath) {
  EXPECT_THROW(trace_writer("/nonexistent_dir/trace.jsonl"), std::runtime_error);
}

// Write failures must be counted, not silent: /dev/full accepts the open
// but fails every flush, so after pushing more than one stdio buffer of
// records the writer must report drops.
TEST(TraceWriter, CountsDroppedEventsOnFullDevice) {
  {
    std::FILE* probe = std::fopen("/dev/full", "w");
    if (probe == nullptr) GTEST_SKIP() << "/dev/full not available";
    std::fclose(probe);
  }
  trace_writer tw("/dev/full");
  traffic_meter meter;
  meter.register_kind(150, "TEST_KIND");
  packet p;
  p.kind = 150;
  p.size_bytes = 64;
  // ~100 bytes per line; 4096 lines comfortably exceed any stdio buffer,
  // forcing at least one failed flush mid-stream.
  for (int i = 0; i < 4096; ++i) {
    tw.record_rx(static_cast<sim_time>(i), 1, 2, p, meter);
  }
  tw.flush();
  EXPECT_GT(tw.events_dropped(), 0u);
  EXPECT_LT(tw.events_written(), 4096u);
}

TEST(TraceScenario, CapturesAllEventClasses) {
  const std::string path = ::testing::TempDir() + "/manet_trace_scenario.jsonl";
  {
    scenario_params p;
    p.n_peers = 12;
    p.area_width = p.area_height = 800;
    p.sim_time = 200.0;
    p.seed = 23;
    p.switch_probability = 1.0;  // guarantee up/down events
    p.i_switch = 60.0;
    p.trace_file = path;
    p.trace_position_interval = 50.0;
    scenario sc(p, "rpcc");
    sc.run();
    ASSERT_NE(sc.trace(), nullptr);
    sc.trace()->flush();
    EXPECT_GT(sc.trace()->events_written(), 100u);
  }
  const auto lines = read_lines(path);
  EXPECT_GT(count_event(lines, "rx"), 50);
  EXPECT_GT(count_event(lines, "query"), 10);
  EXPECT_GT(count_event(lines, "update"), 0);
  EXPECT_GT(count_event(lines, "pos"), 12 * 3);
  EXPECT_GT(count_event(lines, "down"), 0);
  EXPECT_GT(count_event(lines, "up"), 0);
  std::remove(path.c_str());
}

TEST(TraceScenario, OffByDefault) {
  scenario_params p;
  p.n_peers = 5;
  p.sim_time = 10.0;
  scenario sc(p, "pull");
  EXPECT_EQ(sc.trace(), nullptr);
  sc.run();
}

}  // namespace
}  // namespace manet
