// Trace writer (JSONL and binary backends) and its scenario wiring.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "metrics/trace_format.hpp"
#include "metrics/trace_writer.hpp"
#include "scenario/scenario.hpp"

namespace manet {
namespace {

std::vector<std::string> read_lines(const std::string& path) {
  std::ifstream in(path);
  std::vector<std::string> lines;
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

int count_event(const std::vector<std::string>& lines, const std::string& ev) {
  int n = 0;
  const std::string needle = "\"ev\":\"" + ev + "\"";
  for (const auto& l : lines) {
    if (l.find(needle) != std::string::npos) ++n;
  }
  return n;
}

TEST(TraceWriter, WritesWellFormedLines) {
  const std::string path = ::testing::TempDir() + "/manet_trace_unit.jsonl";
  {
    trace_writer tw(path);
    traffic_meter meter;
    meter.register_kind(150, "TEST_KIND");
    packet p;
    p.kind = 150;
    p.src = 7;
    p.hops = 2;
    p.size_bytes = 64;
    tw.record_rx(1.5, 3, 2, p, meter);
    tw.record_state(2.0, 5, false);
    tw.record_query(3.0, 4, 9, consistency_level::strong);
    tw.record_update(4.0, 9, 2);
    tw.record_position(5.0, 1, 100.5, 200.25);
    EXPECT_EQ(tw.events_written(), 5u);
  }
  const auto lines = read_lines(path);
  ASSERT_EQ(lines.size(), 5u);
  for (const auto& l : lines) {
    EXPECT_EQ(l.front(), '{');
    EXPECT_EQ(l.back(), '}');
    EXPECT_NE(l.find("\"t\":"), std::string::npos);
  }
  EXPECT_NE(lines[0].find("TEST_KIND"), std::string::npos);
  EXPECT_NE(lines[1].find("\"down\""), std::string::npos);
  EXPECT_NE(lines[2].find("\"SC\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(TraceWriter, ThrowsOnUnwritablePath) {
  EXPECT_THROW(trace_writer("/nonexistent_dir/trace.jsonl"), std::runtime_error);
}

// Write failures must be counted, not silent: /dev/full accepts the open
// but fails every flush, so after pushing more than one stdio buffer of
// records the writer must report drops.
TEST(TraceWriter, CountsDroppedEventsOnFullDevice) {
  {
    std::FILE* probe = std::fopen("/dev/full", "w");
    if (probe == nullptr) GTEST_SKIP() << "/dev/full not available";
    std::fclose(probe);
  }
  trace_writer tw("/dev/full");
  traffic_meter meter;
  meter.register_kind(150, "TEST_KIND");
  packet p;
  p.kind = 150;
  p.size_bytes = 64;
  // ~100 bytes per line; 4096 lines comfortably exceed any stdio buffer,
  // forcing at least one failed flush mid-stream.
  for (int i = 0; i < 4096; ++i) {
    tw.record_rx(static_cast<sim_time>(i), 1, 2, p, meter);
  }
  tw.flush();
  EXPECT_GT(tw.events_dropped(), 0u);
  EXPECT_LT(tw.events_written(), 4096u);
}

// Binary round trip: every record_* call converts back to exactly the JSONL
// line the text backend writes, including the "kind_<id>" fallback for
// kinds no meta record names.
TEST(TraceWriter, BinaryRoundTripMatchesJsonl) {
  const std::string jsonl_path = ::testing::TempDir() + "/manet_rt.jsonl";
  const std::string bin_path = ::testing::TempDir() + "/manet_rt.bin";
  for (int pass = 0; pass < 2; ++pass) {
    trace_writer tw(pass == 0 ? jsonl_path : bin_path,
                    pass == 0 ? trace_writer::format::jsonl
                              : trace_writer::format::binary);
    traffic_meter meter;
    meter.register_kind(150, "TEST_KIND");
    packet p;
    p.kind = 150;
    p.src = 7;
    p.dst = 3;
    p.ttl = 6;
    p.hops = 2;
    p.size_bytes = 64;
    p.uid = 11;
    p.trace_id = 99;
    tw.record_rx(1.5, 3, 2, p, meter);
    tw.record_send(1.75, 3, p, meter);
    p.kind = 177;  // unregistered: renders as kind_177 on both paths
    tw.record_rx(1.875, 4, 3, p, meter);
    tw.record_state(2.0, 5, false);
    tw.record_state(2.25, 5, true);
    tw.record_query(3.0, 4, 9, consistency_level::delta, 41);
    tw.record_update(4.0, 9, 2, 42);
    tw.record_apply(4.5, 6, 9, 2, 42);
    tw.record_invalidate(4.75, 7, 9, 2, 42);
    tw.record_answer(5.0, 4, 9, 2, true, false, 41);
    tw.record_position(6.0, 1, 100.55, 200.25);
    tw.flush();
    EXPECT_EQ(tw.events_written(), 11u);
    EXPECT_EQ(tw.events_dropped(), 0u);
  }
  EXPECT_FALSE(is_binary_trace(jsonl_path));
  ASSERT_TRUE(is_binary_trace(bin_path));
  std::vector<std::string> converted;
  binary_trace_stats stats;
  std::string error;
  ASSERT_TRUE(read_binary_trace(
      bin_path,
      [&converted](const char* line, std::size_t len) {
        converted.emplace_back(line, len);
      },
      &stats, &error))
      << error;
  EXPECT_EQ(stats.records, 11u);
  EXPECT_EQ(stats.meta_records, 1u);  // only TEST_KIND is registered
  EXPECT_FALSE(stats.truncated_tail);
  const auto expected = read_lines(jsonl_path);
  ASSERT_EQ(converted.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    EXPECT_EQ(converted[i], expected[i]) << "record " << i;
  }
  EXPECT_NE(converted[2].find("kind_177"), std::string::npos);
  std::remove(jsonl_path.c_str());
  std::remove(bin_path.c_str());
}

// A crash-interrupted binary capture (mid-record tail) still replays every
// complete record and reports the truncation instead of failing.
TEST(TraceWriter, BinaryTruncatedTailReplaysCompleteRecords) {
  const std::string path = ::testing::TempDir() + "/manet_trunc.bin";
  {
    trace_writer tw(path, trace_writer::format::binary);
    traffic_meter meter;
    packet p;
    p.kind = 150;
    tw.record_rx(1.0, 1, 2, p, meter);
    tw.record_rx(2.0, 2, 3, p, meter);
    tw.flush();
  }
  // Chop the file mid-way through the last record.
  std::FILE* f = std::fopen(path.c_str(), "rb+");
  ASSERT_NE(f, nullptr);
  ASSERT_EQ(std::fseek(f, 0, SEEK_END), 0);
  const long size = std::ftell(f);
  std::fclose(f);
  ASSERT_EQ(::truncate(path.c_str(), size - 10), 0);
  binary_trace_stats stats;
  std::string error;
  std::size_t lines = 0;
  ASSERT_TRUE(read_binary_trace(
      path, [&lines](const char*, std::size_t) { ++lines; }, &stats, &error))
      << error;
  EXPECT_EQ(lines, 1u);
  EXPECT_TRUE(stats.truncated_tail);
  std::remove(path.c_str());
}

TEST(TraceWriter, BinaryReaderRejectsJsonlAndBadVersions) {
  const std::string path = ::testing::TempDir() + "/manet_notbin.jsonl";
  {
    std::ofstream out(path);
    out << "{\"t\":1.0,\"ev\":\"update\",\"item\":1,\"version\":1,"
           "\"trace\":0}\n";
  }
  binary_trace_stats stats;
  std::string error;
  EXPECT_FALSE(read_binary_trace(
      path, [](const char*, std::size_t) {}, &stats, &error));
  EXPECT_NE(error.find("not a binary trace"), std::string::npos);
  // Corrupt the version field of a real header: distinct, actionable error.
  const std::string bad = ::testing::TempDir() + "/manet_badver.bin";
  {
    trace_file_header hdr;
    hdr.version = 999;
    hdr.record_size = sizeof(trace_record);
    std::FILE* f = std::fopen(bad.c_str(), "wb");
    ASSERT_NE(f, nullptr);
    std::fwrite(&hdr, 1, sizeof hdr, f);
    std::fclose(f);
  }
  error.clear();
  EXPECT_FALSE(read_binary_trace(
      bad, [](const char*, std::size_t) {}, &stats, &error));
  EXPECT_NE(error.find("version"), std::string::npos);
  std::remove(path.c_str());
  std::remove(bad.c_str());
}

// The same seed captured through both backends must produce the same event
// stream: converting the binary capture yields the JSONL capture verbatim.
TEST(TraceScenario, BinaryCaptureConvertsToJsonlCaptureExactly) {
  const std::string jsonl_path = ::testing::TempDir() + "/manet_eq.jsonl";
  const std::string bin_path = ::testing::TempDir() + "/manet_eq.bin";
  scenario_params p;
  p.n_peers = 12;
  p.area_width = p.area_height = 800;
  p.sim_time = 120.0;
  p.seed = 23;
  p.trace_position_interval = 50.0;
  std::uint64_t jsonl_events = 0;
  {
    p.trace_file = jsonl_path;
    p.trace_format = "jsonl";
    scenario sc(p, "rpcc");
    sc.run();
    jsonl_events = sc.trace()->events_written();
  }
  {
    p.trace_file = bin_path;
    p.trace_format = "binary";
    scenario sc(p, "rpcc");
    sc.run();
    ASSERT_EQ(sc.trace()->backend(), trace_writer::format::binary);
    // run() settles block accounting, so the counters agree across modes.
    EXPECT_EQ(sc.trace()->events_written(), jsonl_events);
    EXPECT_EQ(sc.trace()->events_dropped(), 0u);
  }
  std::vector<std::string> converted;
  binary_trace_stats stats;
  std::string error;
  ASSERT_TRUE(read_binary_trace(
      bin_path,
      [&converted](const char* line, std::size_t len) {
        converted.emplace_back(line, len);
      },
      &stats, &error))
      << error;
  const auto expected = read_lines(jsonl_path);
  ASSERT_EQ(converted.size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_EQ(converted[i], expected[i]) << "record " << i;
  }
  std::remove(jsonl_path.c_str());
  std::remove(bin_path.c_str());
}

TEST(TraceScenario, CapturesAllEventClasses) {
  const std::string path = ::testing::TempDir() + "/manet_trace_scenario.jsonl";
  {
    scenario_params p;
    p.n_peers = 12;
    p.area_width = p.area_height = 800;
    p.sim_time = 200.0;
    p.seed = 23;
    p.switch_probability = 1.0;  // guarantee up/down events
    p.i_switch = 60.0;
    p.trace_file = path;
    p.trace_position_interval = 50.0;
    scenario sc(p, "rpcc");
    sc.run();
    ASSERT_NE(sc.trace(), nullptr);
    sc.trace()->flush();
    EXPECT_GT(sc.trace()->events_written(), 100u);
  }
  const auto lines = read_lines(path);
  EXPECT_GT(count_event(lines, "rx"), 50);
  EXPECT_GT(count_event(lines, "query"), 10);
  EXPECT_GT(count_event(lines, "update"), 0);
  EXPECT_GT(count_event(lines, "pos"), 12 * 3);
  EXPECT_GT(count_event(lines, "down"), 0);
  EXPECT_GT(count_event(lines, "up"), 0);
  std::remove(path.c_str());
}

TEST(TraceScenario, OffByDefault) {
  scenario_params p;
  p.n_peers = 5;
  p.sim_time = 10.0;
  scenario sc(p, "pull");
  EXPECT_EQ(sc.trace(), nullptr);
  sc.run();
}

}  // namespace
}  // namespace manet
