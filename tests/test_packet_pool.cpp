// Pooled payload slab: handle refcounting, slot recycling with generation
// checks, stale-handle expiry, the oversized-payload heap fallback, and the
// stats the memory metrics read. Mirrors tests/test_event_pool.cpp for the
// event kernel's slab (but deliberately does NOT replace global operator
// new — that binary-wide hook lives in exactly one TU).
#include <gtest/gtest.h>

#include <utility>
#include <vector>

#include "net/packet.hpp"
#include "net/packet_pool.hpp"

namespace manet {
namespace {

struct small_msg final : typed_payload<small_msg> {
  std::uint64_t value = 0;
};

struct other_msg final : typed_payload<other_msg> {
  int x = 0;
};

struct huge_msg final : typed_payload<huge_msg> {
  unsigned char blob[2 * packet_pool::payload_capacity] = {};
};
static_assert(sizeof(huge_msg) > packet_pool::payload_capacity,
              "huge_msg must exercise the heap fallback");

TEST(PacketPool, MakeFillAndRead) {
  packet_pool pool;
  auto p = pool.make<small_msg>();
  p->value = 42;
  EXPECT_EQ(pool.live(), 1u);
  EXPECT_EQ(pool.total_made(), 1u);
  // Read back through the frozen base-class handle, as a receiver would.
  const payload_ptr& ro = p;
  EXPECT_EQ(static_cast<const small_msg&>(*ro).value, 42u);
  EXPECT_EQ(ro->payload_type, payload_type_id_of<small_msg>());
}

TEST(PacketPool, CopyBumpsRefcountAndLastReleaseFrees) {
  packet_pool pool;
  payload_ptr a = pool.make<small_msg>();
  payload_ptr b = a;  // refcount 2
  EXPECT_EQ(pool.live(), 1u);
  a.reset();
  EXPECT_EQ(pool.live(), 1u);  // b still holds it
  EXPECT_TRUE(pool.slot_live(b.slot()));
  b.reset();
  EXPECT_EQ(pool.live(), 0u);
}

TEST(PacketPool, MoveTransfersWithoutRefcountChurn) {
  packet_pool pool;
  payload_ptr a = pool.make<small_msg>();
  const std::uint32_t slot = a.slot();
  payload_ptr b = std::move(a);
  EXPECT_EQ(a, nullptr);
  EXPECT_EQ(b.slot(), slot);
  EXPECT_EQ(pool.live(), 1u);
  payload_ptr c;
  c = std::move(b);
  EXPECT_EQ(b, nullptr);
  EXPECT_EQ(pool.live(), 1u);
  c.reset();
  EXPECT_EQ(pool.live(), 0u);
}

TEST(PacketPool, SlotReuseBumpsGeneration) {
  packet_pool pool;
  payload_ptr a = pool.make<small_msg>();
  const std::uint32_t slot = a.slot();
  const std::uint32_t gen = a.generation();
  a.reset();
  // LIFO free list: the next make reuses the same slot, one generation on.
  payload_ptr b = pool.make<other_msg>();
  EXPECT_EQ(b.slot(), slot);
  EXPECT_EQ(b.generation(), gen + 1);
}

TEST(PacketPool, WeakExpiresOnReleaseAndStaysExpiredAfterReuse) {
  packet_pool pool;
  payload_ptr a = pool.make<small_msg>();
  const std::uint32_t slot = a.slot();
  payload_weak w(a);
  EXPECT_FALSE(w.expired());
  a.reset();
  EXPECT_TRUE(w.expired());
  EXPECT_EQ(w.lock(), nullptr);
  // The slot gets recycled for a new payload; the old weak must not
  // resurrect it — this is the stale-generation edge the pool exists for.
  payload_ptr b = pool.make<small_msg>();
  ASSERT_EQ(b.slot(), slot);
  EXPECT_TRUE(w.expired());
  EXPECT_EQ(w.lock(), nullptr);
  payload_weak w2(b);
  EXPECT_FALSE(w2.expired());
}

TEST(PacketPool, WeakLockKeepsPayloadAliveWhileInFlight) {
  // Free-while-in-flight: the originator drops its reference while a copy
  // (a scheduled delivery, say) is still live — the payload must survive
  // until the in-flight reference dies too.
  packet_pool pool;
  payload_ptr origin = pool.make<small_msg>();
  payload_weak w(origin);
  payload_ptr in_flight = w.lock();  // refcount 2
  ASSERT_NE(in_flight, nullptr);
  origin.reset();
  EXPECT_FALSE(w.expired());  // still alive through in_flight
  EXPECT_EQ(pool.live(), 1u);
  in_flight.reset();
  EXPECT_TRUE(w.expired());
  EXPECT_EQ(pool.live(), 0u);
}

TEST(PacketPool, HeapFallbackForOversizedPayloads) {
  packet_pool pool;
  {
    auto p = pool.make<huge_msg>();
    p->blob[200] = 7;
    EXPECT_EQ(pool.heap_fallbacks(), 1u);
    EXPECT_EQ(pool.live(), 1u);
    const payload_ptr& ro = p;
    EXPECT_EQ(static_cast<const huge_msg&>(*ro).blob[200], 7);
  }
  EXPECT_EQ(pool.live(), 0u);
  // The freed slot is reused for an inline payload without confusion.
  payload_ptr q = pool.make<small_msg>();
  EXPECT_EQ(pool.heap_fallbacks(), 1u);
  EXPECT_EQ(pool.live(), 1u);
}

TEST(PacketPool, ChunkGrowthKeepsPayloadAddressesStable) {
  // Handlers hold `const T*` views into slots across nested sends; growing
  // the slab by whole chunks (not reallocating a vector) is what makes that
  // safe. Allocate across multiple chunks and re-verify the first payload.
  packet_pool pool;
  std::vector<payload_ptr> keep;
  auto first = pool.make<small_msg>();
  first->value = 99;
  const auto* first_obj =
      static_cast<const small_msg*>(static_cast<const payload_ptr&>(first).get());
  keep.push_back(std::move(first));
  for (int i = 0; i < 1000; ++i) {
    auto p = pool.make<small_msg>();
    p->value = static_cast<std::uint64_t>(i);
    keep.push_back(std::move(p));
  }
  EXPECT_GE(pool.pool_slots(), 1001u);
  EXPECT_EQ(first_obj->value, 99u);  // address survived the growth
  EXPECT_EQ(pool.live(), 1001u);
}

TEST(PacketPool, HighWaterMarkNeverShrinks) {
  packet_pool pool;
  {
    std::vector<payload_ptr> burst;
    for (int i = 0; i < 600; ++i) burst.push_back(pool.make<small_msg>());
    EXPECT_GE(pool.pool_slots(), 600u);
  }
  EXPECT_EQ(pool.live(), 0u);
  const std::size_t high = pool.pool_slots();
  const std::size_t mem = pool.memory_bytes();
  // Steady-state reuse: no new slots, no new memory.
  for (int i = 0; i < 5000; ++i) {
    payload_ptr p = pool.make<small_msg>();
  }
  EXPECT_EQ(pool.pool_slots(), high);
  EXPECT_EQ(pool.memory_bytes(), mem);
  EXPECT_EQ(pool.total_made(), 5600u);
}

TEST(PacketPool, PayloadCastInteropThroughPacket) {
  packet_pool pool;
  packet p;
  EXPECT_EQ(payload_cast<small_msg>(p), nullptr);  // empty payload
  auto m = pool.make<small_msg>();
  m->value = 5;
  p.payload = std::move(m);
  const auto* hit = payload_cast<small_msg>(p);
  ASSERT_NE(hit, nullptr);
  EXPECT_EQ(hit->value, 5u);
  EXPECT_EQ(payload_cast<other_msg>(p), nullptr);  // wrong type
}

TEST(PacketPool, PoolDestructionDestroysStragglerSlots) {
  // Forgiving teardown: ~packet_pool runs the payload destructors for any
  // slot still live, so heap-owning payloads don't leak even if a handle
  // was dropped without release. The handles themselves are intentionally
  // leaked (a few bytes, once) because a handle must never outlive its
  // pool — destroying one afterwards would touch freed memory.
  auto pool = std::make_unique<packet_pool>();
  auto* s1 = new payload_ptr(pool->make<small_msg>());
  auto* s2 = new payload_ptr(pool->make<huge_msg>());
  (void)s1;
  (void)s2;
  EXPECT_EQ(pool->live(), 2u);
  pool.reset();  // must destroy both slots, including the heap fallback
}

}  // namespace
}  // namespace manet
