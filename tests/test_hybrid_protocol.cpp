// "Push with adaptive pull" hybrid baseline [Lan03].
#include <gtest/gtest.h>

#include "consistency/hybrid_protocol.hpp"
#include "scenario/scenario.hpp"
#include "test_util.hpp"

namespace manet {
namespace {

using manet::testing::rig;

class HybridTest : public ::testing::Test {
 protected:
  HybridTest() : r(rig::line(4)) {
    ctx = r.make_context(64, 256, 60.0);
    hybrid_params hp;
    hp.ttn = 20.0;
    hp.inv_ttl = 8;
    hp.validity = 60.0;
    hp.poll_timeout = 1.0;
    proto = std::make_unique<hybrid_protocol>(ctx, hp);
    proto->start();
  }

  rig r;
  protocol_context ctx;
  std::unique_ptr<hybrid_protocol> proto;
};

TEST_F(HybridTest, PollIsUnicastNotFlood) {
  proto->on_query(3, 0, consistency_level::strong);
  r.run_for(5.0);
  EXPECT_EQ(r.qlog->answered(), 1u);
  // A poll over 3 hops = 3 frames per attempt (the first attempt may time
  // out while AODV's expanding ring is still searching); a flood-based poll
  // would transmit from every node. Assert the cost stays path-linear.
  EXPECT_LE(r.net->meter().counters(kind_hyb_poll).originated, 2u);
  EXPECT_LE(r.net->meter().counters(kind_hyb_poll).tx_frames, 8u);
}

TEST_F(HybridTest, ReportConfirmedCopySkipsPolling) {
  r.run_for(25.0);  // at least one report cycle confirms the copies
  const auto polls_before = proto->polls_sent();
  proto->on_query(3, 0, consistency_level::strong);
  r.run_for(1.0);
  EXPECT_EQ(r.qlog->answered(), 1u);
  EXPECT_EQ(proto->polls_sent(), polls_before);
  EXPECT_EQ(r.qlog->stats(consistency_level::strong).validated, 1u);
}

TEST_F(HybridTest, InvalidatedCopyPullsContent) {
  r.run_for(25.0);
  r.registry.bump(0, r.sim.now());
  proto->on_update(0);
  r.run_for(25.0);  // next report marks the copy invalid everywhere
  const cached_copy* copy = r.stores[3].find(0);
  ASSERT_NE(copy, nullptr);
  EXPECT_TRUE(copy->invalid);
  proto->on_query(3, 0, consistency_level::strong);
  r.run_for(5.0);
  EXPECT_EQ(r.qlog->answered(), 1u);
  EXPECT_GT(r.net->meter().counters(kind_hyb_data).originated, 0u);
  EXPECT_EQ(r.stores[3].find(0)->version, 1u);
  EXPECT_EQ(r.qlog->totals().stale_answers, 0u);
}

TEST_F(HybridTest, WeakAnswersLocally) {
  proto->on_query(3, 0, consistency_level::weak);
  r.run_for(1.0);
  EXPECT_EQ(r.qlog->answered(), 1u);
  EXPECT_EQ(proto->polls_sent(), 0u);
}

TEST_F(HybridTest, UnreachableSourceFallsBackWithBackoff) {
  r.net->set_node_up(0, false);
  proto->on_query(3, 0, consistency_level::strong);
  r.run_for(10.0);
  EXPECT_EQ(r.qlog->answered(), 1u);
  EXPECT_EQ(proto->unvalidated_answers(), 1u);
  const auto polls = proto->polls_sent();
  // Within the backoff window a second query answers locally, no new poll.
  proto->on_query(3, 0, consistency_level::strong);
  r.run_for(1.0);
  EXPECT_EQ(r.qlog->answered(), 2u);
  EXPECT_EQ(proto->polls_sent(), polls);
}

TEST(HybridScenario, RunsEndToEndCheaperThanPull) {
  scenario_params p;
  p.n_peers = 25;
  p.area_width = p.area_height = 1000;
  p.sim_time = 400.0;
  p.seed = 3;
  scenario hybrid(p, "push_pull");
  scenario pull(p, "pull");
  const run_result rh = hybrid.run();
  const run_result rp = pull.run();
  EXPECT_GT(rh.queries_answered, rh.queries_issued * 7 / 10);
  // Unicast polls + shared reports must beat per-query flooding.
  EXPECT_LT(rh.total_messages, rp.total_messages);
}

}  // namespace
}  // namespace manet
