// archlint self-tests: the layers.conf grammar, layer classification, the
// fixture tree under tools/archlint/fixtures/tree (one specimen per rule at
// pinned lines), and the production gate — the real src/ + tools/ trees
// must scan clean under the real layer contract.
#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "archlint.hpp"
#include "common.hpp"

#ifndef ARCHLINT_FIXTURE_DIR
#error "ARCHLINT_FIXTURE_DIR must point at tools/archlint/fixtures/tree"
#endif
#ifndef ARCHLINT_LAYERS_CONF
#error "ARCHLINT_LAYERS_CONF must point at tools/archlint/layers.conf"
#endif
#ifndef MANET_SRC_DIR
#error "MANET_SRC_DIR must point at the repository's src/ tree"
#endif
#ifndef MANET_TOOLS_DIR
#error "MANET_TOOLS_DIR must point at the repository's tools/ tree"
#endif

namespace {

using archlint::finding;
using archlint::layer_contract;

layer_contract real_contract() {
  std::string err;
  const layer_contract c = archlint::parse_layer_contract(
      lint_core::read_file(ARCHLINT_LAYERS_CONF), &err);
  EXPECT_EQ(err, "");
  EXPECT_FALSE(c.layers.empty());
  return c;
}

std::multiset<std::pair<int, std::string>> line_rules(
    const std::vector<finding>& fs, const std::string& file_suffix) {
  std::multiset<std::pair<int, std::string>> out;
  for (const finding& f : fs) {
    if (lint_core::ends_with(f.file, file_suffix)) {
      out.insert({f.line, f.rule});
    }
  }
  return out;
}

archlint::scan_result scan_fixtures() {
  archlint::options opts;
  opts.roots = {ARCHLINT_FIXTURE_DIR};
  opts.exclude = {};  // the default "/fixtures/" filter would drop the tree
  opts.contract = real_contract();
  return archlint::scan(opts);
}

// --- layers.conf grammar ----------------------------------------------------

TEST(ArchlintContract, ParsesLayersSidecarToplevelAndAllowEdges) {
  std::string err;
  const layer_contract c = archlint::parse_layer_contract(
      "# comment\n"
      "layer util\n"
      "layer cache\n"
      "layer scenario\n"
      "sidecar obs includes util\n"
      "toplevel tools\n"
      "allow cache -> scenario : specimen reason\n",
      &err);
  EXPECT_EQ(err, "");
  const std::vector<std::string> want = {"util", "cache", "scenario"};
  EXPECT_EQ(c.layers, want);
  EXPECT_EQ(c.rank.at("scenario"), 2);
  EXPECT_EQ(c.sidecar, "obs");
  ASSERT_EQ(c.sidecar_deps.size(), 1u);
  EXPECT_EQ(c.sidecar_deps[0], "util");
  EXPECT_EQ(c.toplevel, "tools");
  ASSERT_EQ(c.allowed_edges.size(), 1u);
  EXPECT_EQ(c.allowed_edges[0].from, "cache");
  EXPECT_EQ(c.allowed_edges[0].to, "scenario");
  EXPECT_EQ(c.allowed_edges[0].reason, "specimen reason");
}

TEST(ArchlintContract, RejectsBadGrammarWithLineDiagnostics) {
  std::string err;
  archlint::parse_layer_contract("layer util\nlayer util\n", &err);
  EXPECT_NE(err.find("line 2"), std::string::npos);
  EXPECT_NE(err.find("duplicate"), std::string::npos);

  archlint::parse_layer_contract("sidecar obs\n", &err);
  EXPECT_NE(err.find("sidecar"), std::string::npos);

  archlint::parse_layer_contract(
      "layer a\nlayer b\nallow a -> b\n", &err);
  EXPECT_NE(err.find("reason"), std::string::npos);

  archlint::parse_layer_contract("bogus x\n", &err);
  EXPECT_NE(err.find("unknown directive"), std::string::npos);

  archlint::parse_layer_contract(
      "layer util\nallow util -> nope : r\n", &err);
  EXPECT_NE(err.find("unknown layer"), std::string::npos);

  archlint::parse_layer_contract("sidecar obs includes util\n", &err);
  EXPECT_NE(err.find("not a layer"), std::string::npos);
}

TEST(ArchlintContract, LayerOfUsesLastSrcSegmentThenTools) {
  const layer_contract c = real_contract();
  EXPECT_EQ(archlint::layer_of(c, "src/cache/cache_store.hpp"), "cache");
  EXPECT_EQ(archlint::layer_of(c, "/abs/repo/src/obs/prof.cpp"), "obs");
  // A fixture tree's embedded src/ wins over the tools/ prefix.
  EXPECT_EQ(
      archlint::layer_of(c, "tools/archlint/fixtures/tree/src/util/a.hpp"),
      "util");
  EXPECT_EQ(archlint::layer_of(c, "tools/detlint/main.cpp"), "tools");
  EXPECT_EQ(archlint::layer_of(c, "README.md"), "");
}

// --- fixture tree -----------------------------------------------------------

TEST(ArchlintFixtures, EveryRuleFiresAtItsPinnedLines) {
  const auto r = scan_fixtures();
  using want_t = std::multiset<std::pair<int, std::string>>;
  EXPECT_EQ(line_rules(r.findings, "cache/bad_marker.cpp"),
            (want_t{{6, "ARCH000"}, {11, "ARCH000"}}));
  EXPECT_EQ(line_rules(r.findings, "cache/bad_up.hpp"),
            (want_t{{7, "ARCH001"}}));
  EXPECT_EQ(line_rules(r.findings, "cache/swallow.cpp"),
            (want_t{{11, "DET009"}}));
  EXPECT_EQ(line_rules(r.findings, "obs/mutator.hpp"),
            (want_t{{8, "ARCH001"}, {13, "DET008"}, {16, "DET008"}}));
  EXPECT_EQ(line_rules(r.findings, "util/cyc_a.hpp"),
            (want_t{{6, "ARCH002"}}));
  EXPECT_EQ(line_rules(r.findings, "util/no_guard.hpp"),
            (want_t{{1, "ARCH003"}}));
  EXPECT_EQ(line_rules(r.findings, "util/uplevel.hpp"),
            (want_t{{7, "ARCH003"}}));
  EXPECT_EQ(line_rules(r.findings, "util/unresolved.hpp"),
            (want_t{{8, "ARCH003"}}));
  // Eleven findings total: nothing fired anywhere else.
  EXPECT_EQ(r.findings.size(), 11u);
}

TEST(ArchlintFixtures, CleanAndSuppressedSpecimensStaySilent) {
  const auto r = scan_fixtures();
  for (const char* clean : {"cache/suppressed_up.hpp", "obs/clean_probe.hpp",
                            "scenario/top.hpp", "cache/store.hpp",
                            "util/base.hpp"}) {
    EXPECT_TRUE(line_rules(r.findings, clean).empty()) << clean;
  }
}

TEST(ArchlintFixtures, DotAndSummaryRenderTheFixtureTree) {
  const auto r = scan_fixtures();
  const std::string dot = archlint::to_dot(r);
  EXPECT_NE(dot.find("digraph"), std::string::npos);
  EXPECT_NE(dot.find("obs"), std::string::npos);
  const std::string summary = archlint::layer_summary(r);
  EXPECT_NE(summary.find("layer"), std::string::npos);
  EXPECT_NE(summary.find("cache"), std::string::npos);
}

// --- production gate --------------------------------------------------------

TEST(ArchlintFixtures, ProductionTreeIsClean) {
  archlint::options opts;
  opts.roots = {MANET_SRC_DIR, MANET_TOOLS_DIR};
  opts.contract = real_contract();  // default exclude drops /fixtures/
  const auto r = archlint::scan(opts);
  std::string listing;
  for (const finding& f : r.findings) listing += archlint::format(f) + "\n";
  EXPECT_TRUE(r.findings.empty()) << listing;
}

}  // namespace
