// lint_core::suppress — NOLINT-style suppression parsing shared by detlint
// (tag "DET") and archlint (tag "ARCH").
//
// Grammar, per marker, anywhere in a raw source line (usually a comment):
//   NOLINT-<TAG>(RULE[,RULE...]: reason)       suppresses on the same line
//   NOLINTNEXTLINE-<TAG>(RULE...: reason)      suppresses on the next line
// '*' as a rule suppresses every rule of that tag. The reason is mandatory:
// a marker with an empty reason or without a parsable "(rules: reason)"
// body is malformed, and the caller reports it as <TAG>000 so a typo can
// never silently disable a rule.
#ifndef MANET_TOOLS_LINT_CORE_SUPPRESS_HPP
#define MANET_TOOLS_LINT_CORE_SUPPRESS_HPP

#include <set>
#include <string>
#include <utility>
#include <vector>

namespace lint_core {

struct suppression {
  std::set<std::string> rules;  ///< may contain "*"
  bool has_reason = false;
  bool malformed = false;
};

/// Parses every NOLINT-<tag> marker on a raw line. Returns (same-line,
/// next-line) suppressions; a marker without parsable "(rules: reason)"
/// content yields a malformed entry.
std::pair<std::vector<suppression>, std::vector<suppression>>
parse_suppressions(const std::string& raw_line, const std::string& tag);

/// True when one of `sups` is well-formed and covers `rule` (or "*").
bool suppresses(const std::vector<suppression>& sups, const std::string& rule);

/// Per-file suppression table: active[i] holds the suppressions covering
/// line i (same-line markers plus NEXTLINE markers from line i-1).
/// Malformed / reasonless markers are reported through `bad`: one call per
/// offending marker with (line index, message).
template <typename BadFn>
std::vector<std::vector<suppression>> suppression_table(
    const std::vector<std::string>& raw_lines, const std::string& tag,
    BadFn&& bad) {
  std::vector<std::vector<suppression>> active(raw_lines.size());
  for (std::size_t i = 0; i < raw_lines.size(); ++i) {
    auto [same, next] = parse_suppressions(raw_lines[i], tag);
    for (const suppression& s : same) {
      if (s.malformed) {
        bad(i, "malformed NOLINT-" + tag + " suppression: expected NOLINT-" +
                   tag + "(RULE[,RULE]: reason)");
      } else if (!s.has_reason) {
        bad(i, "NOLINT-" + tag + " suppression is missing a reason");
      }
    }
    for (const suppression& s : next) {
      if (s.malformed) {
        bad(i, "malformed NOLINTNEXTLINE-" + tag +
                   " suppression: expected NOLINTNEXTLINE-" + tag +
                   "(RULE[,RULE]: reason)");
      } else if (!s.has_reason) {
        bad(i, "NOLINTNEXTLINE-" + tag + " suppression is missing a reason");
      }
    }
    active[i].insert(active[i].end(), same.begin(), same.end());
    if (!next.empty() && i + 1 < raw_lines.size()) {
      active[i + 1].insert(active[i + 1].end(), next.begin(), next.end());
    }
  }
  return active;
}

}  // namespace lint_core

#endif  // MANET_TOOLS_LINT_CORE_SUPPRESS_HPP
