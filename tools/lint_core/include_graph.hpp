// lint_core::include_graph — quoted-include extraction, resolution, and
// cycle detection over a scanned source tree.
//
// Directives are extracted from the lexed code view, so a commented-out
// `// #include "x.hpp"` or an include path inside a string literal never
// becomes an edge. Only quoted includes are modeled: angle includes name
// system headers outside the layer contract.
//
// Resolution mirrors the build's include dirs without needing them spelled
// out: a target is tried relative to the includer's directory first (the
// tools' local-header idiom), then against every directory that contains a
// scanned file, in sorted order (src/-rooted spellings like
// "net/packet.hpp" resolve through the src/ root this way). Unresolvable
// targets stay in the edge list with an empty `resolved` so archlint's
// header-hygiene rule can flag them.
#ifndef MANET_TOOLS_LINT_CORE_INCLUDE_GRAPH_HPP
#define MANET_TOOLS_LINT_CORE_INCLUDE_GRAPH_HPP

#include <map>
#include <string>
#include <vector>

namespace lint_core {

struct include_edge {
  int line = 0;         ///< 1-based line of the #include directive
  std::string target;   ///< the quoted spelling, verbatim
  std::string resolved; ///< normalized path of the included file; "" if none
};

struct include_graph {
  /// Scanned files (normalized paths), sorted.
  std::vector<std::string> files;
  /// Quoted-include edges per scanned file, in line order.
  std::map<std::string, std::vector<include_edge>> edges;
};

/// Builds the graph for `files` (as returned by collect_files). `texts[i]`
/// is the content of `files[i]`.
include_graph build_include_graph(const std::vector<std::string>& files,
                                  const std::vector<std::string>& texts);

/// One representative include cycle, as the file sequence
/// f0 -> f1 -> ... -> f0, or empty when the graph is acyclic. Deterministic:
/// files and edges are visited in sorted order.
std::vector<std::string> find_include_cycle(const include_graph& g);

/// Graphviz DOT rendering. `layer_of` maps a file to its cluster label
/// ("" = unclustered); edges are file-level, nodes grouped per layer.
std::string to_dot(const include_graph& g,
                   const std::map<std::string, std::string>& layer_of);

}  // namespace lint_core

#endif  // MANET_TOOLS_LINT_CORE_INCLUDE_GRAPH_HPP
