#include "common.hpp"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <set>
#include <sstream>

namespace lint_core {

std::string normalize_path(std::string p) {
  std::replace(p.begin(), p.end(), '\\', '/');
  return p;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool allowed(const std::vector<allow_entry>& allow, const std::string& rule,
             const std::string& path) {
  const std::string norm = normalize_path(path);
  for (const allow_entry& a : allow) {
    if (a.rule == rule && ends_with(norm, a.path_suffix)) return true;
  }
  return false;
}

std::vector<std::string> collect_files(
    const std::vector<std::string>& roots,
    const std::vector<std::string>& exclude_substrings) {
  namespace fs = std::filesystem;
  const std::set<std::string> exts = {".cpp", ".cc", ".cxx",
                                      ".hpp", ".hh", ".h"};
  std::vector<std::string> files;
  auto excluded = [&](const std::string& path) {
    const std::string norm = normalize_path(path);
    for (const std::string& sub : exclude_substrings) {
      if (norm.find(sub) != std::string::npos) return true;
    }
    return false;
  };
  for (const std::string& root : roots) {
    if (fs::is_directory(root)) {
      for (const auto& entry : fs::recursive_directory_iterator(root)) {
        if (!entry.is_regular_file()) continue;
        if (exts.count(entry.path().extension().string()) == 0) continue;
        std::string p = entry.path().string();
        if (!excluded(p)) files.push_back(std::move(p));
      }
    } else if (fs::is_regular_file(root)) {
      if (!excluded(root)) files.push_back(root);
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

std::string format(const finding& f) {
  return f.file + ":" + std::to_string(f.line) + ": " + f.rule + ": " +
         f.message;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::stringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

}  // namespace lint_core
