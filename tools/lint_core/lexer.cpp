#include "lexer.hpp"

#include <cctype>

namespace lint_core {

namespace {

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// True when the identifier-ish run ending just before `i` (exclusive) is a
/// valid raw/encoding string prefix: R, u8R, uR, UR, LR. Used to detect the
/// start of a raw string literal at a '"'.
bool raw_prefix_before(const std::string& s, std::size_t i, std::size_t* start) {
  if (i == 0 || s[i - 1] != 'R') return false;
  std::size_t b = i - 1;  // index of 'R'
  // Optional encoding prefix before the R.
  if (b >= 2 && s[b - 2] == 'u' && s[b - 1] == '8') {
    b -= 2;
  } else if (b >= 1 && (s[b - 1] == 'u' || s[b - 1] == 'U' || s[b - 1] == 'L')) {
    b -= 1;
  }
  // The prefix must not be the tail of a longer identifier (operatoR"" etc.).
  if (b > 0 && is_ident_char(s[b - 1])) return false;
  *start = b;
  return true;
}

}  // namespace

source_view lex(const std::string& text) {
  // Split into physical lines first; the state machine then walks the lines
  // in order so state (block comment, raw string, continued literal)
  // carries across line boundaries.
  source_view v;
  {
    std::string cur;
    for (char c : text) {
      if (c == '\n') {
        v.raw.push_back(cur);
        cur.clear();
      } else {
        cur += c;
      }
    }
    if (!cur.empty()) v.raw.push_back(cur);
  }

  enum class mode {
    normal,
    line_comment,   ///< continues past EOL only via backslash continuation
    block_comment,  ///< continues until */ (no nesting)
    string_lit,     ///< "..." — backslash-newline continues it
    char_lit,       ///< '...'
    raw_string,     ///< R"delim(...)delim"
  };
  mode m = mode::normal;
  std::string raw_delim;  // for raw_string: the ")delim\"" terminator
  int depth = 0;

  v.code.reserve(v.raw.size());
  v.depth.reserve(v.raw.size());
  for (const std::string& line : v.raw) {
    v.depth.push_back(depth);
    std::string s = line;
    const bool continued =
        !line.empty() && line.back() == '\\';  // physical continuation
    std::size_t i = 0;
    while (i < s.size()) {
      switch (m) {
        case mode::line_comment:
        case mode::block_comment: {
          if (m == mode::block_comment && s[i] == '*' && i + 1 < s.size() &&
              s[i + 1] == '/') {
            s[i] = ' ';
            s[i + 1] = ' ';
            i += 2;
            m = mode::normal;
          } else {
            s[i++] = ' ';
          }
          break;
        }
        case mode::string_lit:
        case mode::char_lit: {
          const char quote = m == mode::string_lit ? '"' : '\'';
          if (s[i] == '\\' && i + 1 < s.size()) {
            s[i] = ' ';
            s[i + 1] = ' ';
            i += 2;
          } else if (s[i] == '\\' && i + 1 == s.size()) {
            // Backslash-newline: the literal continues on the next line.
            s[i++] = ' ';
          } else {
            const bool done = s[i] == quote;
            s[i++] = ' ';
            if (done) m = mode::normal;
          }
          break;
        }
        case mode::raw_string: {
          // Look for the ")delim\"" terminator starting at i.
          if (s.compare(i, raw_delim.size(), raw_delim) == 0) {
            for (std::size_t j = 0; j < raw_delim.size(); ++j) s[i + j] = ' ';
            i += raw_delim.size();
            m = mode::normal;
          } else {
            s[i++] = ' ';
          }
          break;
        }
        case mode::normal: {
          const char c = s[i];
          if (c == '/' && i + 1 < s.size() && s[i + 1] == '/') {
            for (std::size_t j = i; j < s.size(); ++j) s[j] = ' ';
            i = s.size();
            // A backslash at EOL continues the comment onto the next
            // physical line (the backslash itself was blanked above).
            m = continued ? mode::line_comment : mode::normal;
            break;
          }
          if (c == '/' && i + 1 < s.size() && s[i + 1] == '*') {
            s[i] = ' ';
            s[i + 1] = ' ';
            i += 2;
            m = mode::block_comment;
            break;
          }
          if (c == '"') {
            std::size_t prefix_start = 0;
            if (raw_prefix_before(s, i, &prefix_start)) {
              // Raw string: collect the delimiter up to the '('.
              std::size_t d = i + 1;
              std::string delim;
              while (d < s.size() && s[d] != '(' && delim.size() < 16) {
                delim += s[d++];
              }
              if (d < s.size() && s[d] == '(') {
                raw_delim = ")" + delim + "\"";
                for (std::size_t j = prefix_start; j <= d; ++j) s[j] = ' ';
                i = d + 1;
                m = mode::raw_string;
                break;
              }
              // No '(' on this line: malformed raw string — fall through and
              // treat it as an ordinary string so we never scan past EOF.
            }
            s[i++] = ' ';
            m = mode::string_lit;
            break;
          }
          if (c == '\'') {
            // Digit separators (1'000'000) are not character literals: a
            // quote immediately after a number/identifier char stays code.
            if (i > 0 && is_ident_char(s[i - 1])) {
              ++i;
              break;
            }
            s[i++] = ' ';
            m = mode::char_lit;
            break;
          }
          if (c == '{') ++depth;
          if (c == '}' && depth > 0) --depth;
          ++i;
          break;
        }
      }
    }
    // End-of-line state transitions.
    if (m == mode::line_comment && !continued) m = mode::normal;
    if (m == mode::char_lit) m = mode::normal;  // char literals don't span lines
    if ((m == mode::string_lit) && !continued) {
      // Unterminated ordinary string without a continuation backslash:
      // recover at EOL (the compiler would reject it; we keep scanning).
      m = mode::normal;
    }
    v.code.push_back(std::move(s));
  }
  return v;
}

std::string code_text(const source_view& v) {
  std::string flat;
  for (const std::string& l : v.code) {
    flat += l;
    flat += '\n';
  }
  return flat;
}

}  // namespace lint_core
