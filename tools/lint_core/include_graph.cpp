#include "include_graph.hpp"

#include <algorithm>
#include <filesystem>
#include <regex>
#include <set>

#include "common.hpp"
#include "lexer.hpp"

namespace lint_core {

namespace {

std::string dirname(const std::string& path) {
  const std::size_t slash = path.find_last_of('/');
  return slash == std::string::npos ? std::string() : path.substr(0, slash);
}

/// Lexically normalizes "a/b/../c" to "a/c" without touching the disk.
std::string lexically_normal(const std::string& path) {
  namespace fs = std::filesystem;
  return normalize_path(fs::path(path).lexically_normal().string());
}

}  // namespace

include_graph build_include_graph(const std::vector<std::string>& files,
                                  const std::vector<std::string>& texts) {
  include_graph g;
  g.files.reserve(files.size());
  for (const std::string& f : files) g.files.push_back(normalize_path(f));
  std::sort(g.files.begin(), g.files.end());

  // Fast membership for resolution, plus the candidate include directories:
  // every directory holding a scanned file AND its ancestors (sorted, so
  // first-hit resolution is deterministic). Ancestors matter because the
  // repo's idiom is src/-rooted spellings — "util/units.hpp" resolves via
  // the src/ root, which itself holds no sources.
  const std::set<std::string> known(g.files.begin(), g.files.end());
  std::set<std::string> dir_set;
  for (const std::string& f : g.files) {
    for (std::string d = dirname(f); !d.empty(); d = dirname(d)) {
      if (!dir_set.insert(d).second) break;  // ancestors already present
    }
  }
  const std::vector<std::string> dirs(dir_set.begin(), dir_set.end());

  // The directive is detected on the *code* view (so an include inside a
  // comment or string literal is dead text), but the target is extracted
  // from the *raw* line: the lexer blanks string-literal contents, and a
  // quoted include path is lexically a string literal.
  static const std::regex directive_re(R"(^\s*#\s*include\b)");
  static const std::regex include_re(R"(^\s*#\s*include\s*"([^"]+)\")");
  for (std::size_t i = 0; i < files.size(); ++i) {
    const std::string norm = normalize_path(files[i]);
    const source_view v = lex(texts[i]);
    std::vector<include_edge>& out = g.edges[norm];
    for (std::size_t li = 0; li < v.code.size(); ++li) {
      if (!std::regex_search(v.code[li], directive_re)) continue;
      std::smatch m;
      if (!std::regex_search(v.raw[li], m, include_re)) continue;
      include_edge e;
      e.line = static_cast<int>(li) + 1;
      e.target = m[1].str();
      // Includer-relative first, then each scanned directory.
      const std::string rel =
          lexically_normal(dirname(norm) + "/" + e.target);
      if (known.count(rel) != 0) {
        e.resolved = rel;
      } else {
        for (const std::string& d : dirs) {
          const std::string cand = lexically_normal(d + "/" + e.target);
          if (known.count(cand) != 0) {
            e.resolved = cand;
            break;
          }
        }
      }
      out.push_back(std::move(e));
    }
  }
  return g;
}

std::vector<std::string> find_include_cycle(const include_graph& g) {
  // Iterative DFS with an explicit stack; colors: 0 unvisited, 1 on the
  // current path, 2 done. The first back edge found (in sorted visit
  // order) yields the reported cycle.
  std::map<std::string, int> color;
  std::vector<std::string> path;

  // Recursive lambda via explicit stack of (node, next-edge-index).
  for (const std::string& start : g.files) {
    if (color[start] != 0) continue;
    std::vector<std::pair<std::string, std::size_t>> stack;
    stack.push_back({start, 0});
    color[start] = 1;
    path.push_back(start);
    while (!stack.empty()) {
      auto& [node, idx] = stack.back();
      const auto it = g.edges.find(node);
      const std::vector<include_edge>* edges =
          it == g.edges.end() ? nullptr : &it->second;
      bool descended = false;
      while (edges != nullptr && idx < edges->size()) {
        const std::string& next = (*edges)[idx].resolved;
        ++idx;
        if (next.empty()) continue;
        const int c = color[next];
        if (c == 1) {
          // Found a cycle: slice the path from `next` onward and close it.
          const auto pos = std::find(path.begin(), path.end(), next);
          std::vector<std::string> cycle(pos, path.end());
          cycle.push_back(next);
          return cycle;
        }
        if (c == 0) {
          color[next] = 1;
          path.push_back(next);
          stack.push_back({next, 0});
          descended = true;
          break;
        }
      }
      if (!descended) {
        color[node] = 2;
        path.pop_back();
        stack.pop_back();
      }
    }
  }
  return {};
}

std::string to_dot(const include_graph& g,
                   const std::map<std::string, std::string>& layer_of) {
  // Group files per layer cluster; deterministic output (sorted maps).
  std::map<std::string, std::vector<std::string>> by_layer;
  for (const std::string& f : g.files) {
    const auto it = layer_of.find(f);
    by_layer[it == layer_of.end() ? std::string() : it->second].push_back(f);
  }
  std::string out = "digraph includes {\n  rankdir=LR;\n  node [shape=box, fontsize=9];\n";
  int cluster = 0;
  for (const auto& [layer, files] : by_layer) {
    if (!layer.empty()) {
      out += "  subgraph cluster_" + std::to_string(cluster++) + " {\n";
      out += "    label=\"" + layer + "\";\n";
    }
    for (const std::string& f : files) {
      out += (layer.empty() ? "  \"" : "    \"") + f + "\";\n";
    }
    if (!layer.empty()) out += "  }\n";
  }
  for (const auto& [from, edges] : g.edges) {
    for (const include_edge& e : edges) {
      if (e.resolved.empty()) continue;
      out += "  \"" + from + "\" -> \"" + e.resolved + "\";\n";
    }
  }
  out += "}\n";
  return out;
}

}  // namespace lint_core
