// lint_core::lexer — the token-aware source view shared by detlint and
// archlint.
//
// Both linters run line-anchored rules (regexes, include extraction) that
// must never fire on prose: comment bodies, string/char literal contents,
// and raw-string payloads are code-shaped text that means nothing to the
// program. detlint's original scanner blanked those per physical line,
// which is wrong whenever a literal or comment crosses a line boundary:
//
//   - raw strings: R"(a "quoted" rand() payload)" — the per-line scanner
//     treated the first inner '"' as the literal's end and then "saw" the
//     rand() call as code;
//   - line continuations: a // comment (or #define) ending in backslash
//     continues onto the next physical line, which the per-line scanner
//     treated as code;
//   - multi-line ordinary strings ("abc\<newline>def") leaked their tails.
//
// lex() scans the whole file once with a real literal/comment state
// machine and produces a source_view: the raw physical lines (for
// suppression-comment parsing, which lives in comments on purpose), the
// code lines (comments and literal contents replaced by spaces, columns
// and line structure preserved), and the brace depth at the start of each
// line (for scope-aware rules like DET009's catch-block extraction).
//
// Deliberate non-features, pinned by the unit tests:
//   - block comments do not nest (C++: the first */ closes the comment);
//   - trigraphs are not interpreted (removed in C++17), so "??/" at end of
//     line is two question marks and a slash, not a line continuation;
//   - digraphs (<% %> <: :>) are passed through untouched.
#ifndef MANET_TOOLS_LINT_CORE_LEXER_HPP
#define MANET_TOOLS_LINT_CORE_LEXER_HPP

#include <string>
#include <vector>

namespace lint_core {

struct source_view {
  /// Physical lines exactly as read (no trailing '\n').
  std::vector<std::string> raw;
  /// Same lines with comment bodies and literal contents blanked to
  /// spaces; columns are preserved so finding positions line up with raw.
  std::vector<std::string> code;
  /// Brace depth ({} nesting in code text) at the *start* of each line.
  std::vector<int> depth;
};

/// Tokenizes `text` into the three parallel per-line views.
source_view lex(const std::string& text);

/// Convenience: the blanked code view flattened back into one string with
/// '\n' separators (pass-1 scans over whole files use this).
std::string code_text(const source_view& v);

}  // namespace lint_core

#endif  // MANET_TOOLS_LINT_CORE_LEXER_HPP
