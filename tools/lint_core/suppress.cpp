#include "suppress.hpp"

#include <regex>
#include <sstream>

namespace lint_core {

std::pair<std::vector<suppression>, std::vector<suppression>>
parse_suppressions(const std::string& raw_line, const std::string& tag) {
  const std::regex marker_re("NOLINT(NEXTLINE)?-" + tag + "\\b");
  const std::regex full_re("NOLINT(NEXTLINE)?-" + tag + R"(\(([^)]*)\))");
  std::vector<suppression> same;
  std::vector<suppression> next;
  std::set<std::size_t> parsed_positions;
  for (auto it = std::sregex_iterator(raw_line.begin(), raw_line.end(), full_re);
       it != std::sregex_iterator(); ++it) {
    const std::smatch& m = *it;
    parsed_positions.insert(static_cast<std::size_t>(m.position(0)));
    suppression sup;
    const std::string body = m[2].str();
    const std::size_t colon = body.find(':');
    std::string rules = colon == std::string::npos ? body : body.substr(0, colon);
    std::string reason = colon == std::string::npos ? "" : body.substr(colon + 1);
    std::stringstream ss(rules);
    std::string rule;
    while (std::getline(ss, rule, ',')) {
      const auto b = rule.find_first_not_of(" \t");
      const auto e = rule.find_last_not_of(" \t");
      if (b != std::string::npos) sup.rules.insert(rule.substr(b, e - b + 1));
    }
    sup.has_reason = reason.find_first_not_of(" \t") != std::string::npos;
    if (sup.rules.empty()) sup.malformed = true;
    (m[1].matched ? next : same).push_back(std::move(sup));
  }
  // Bare markers without (…) are malformed suppressions.
  for (auto it =
           std::sregex_iterator(raw_line.begin(), raw_line.end(), marker_re);
       it != std::sregex_iterator(); ++it) {
    const std::smatch& m = *it;
    if (parsed_positions.count(static_cast<std::size_t>(m.position(0))) != 0) {
      continue;
    }
    suppression sup;
    sup.malformed = true;
    (m[1].matched ? next : same).push_back(std::move(sup));
  }
  return {same, next};
}

bool suppresses(const std::vector<suppression>& sups, const std::string& rule) {
  for (const suppression& s : sups) {
    if (s.malformed || !s.has_reason) continue;
    if (s.rules.count("*") != 0 || s.rules.count(rule) != 0) return true;
  }
  return false;
}

}  // namespace lint_core
