// lint_core::common — the finding record, path allowlists, and source-tree
// discovery shared by detlint and archlint.
#ifndef MANET_TOOLS_LINT_CORE_COMMON_HPP
#define MANET_TOOLS_LINT_CORE_COMMON_HPP

#include <string>
#include <vector>

namespace lint_core {

struct finding {
  std::string file;     ///< path as given/discovered
  int line = 0;         ///< 1-based
  std::string rule;     ///< e.g. "DET001", "ARCH002"
  std::string message;  ///< human-readable explanation
};

struct allow_entry {
  std::string rule;         ///< rule id the exemption applies to
  std::string path_suffix;  ///< matches when the normalized path ends with it
};

/// Forward-slash normalization for portable suffix matching.
std::string normalize_path(std::string p);

bool ends_with(const std::string& s, const std::string& suffix);

/// True when `allow` carries an entry exempting `rule` for `path`.
bool allowed(const std::vector<allow_entry>& allow, const std::string& rule,
             const std::string& path);

/// Expands directories in `roots` to the C++ files beneath them
/// (*.cpp, *.cc, *.cxx, *.hpp, *.hh, *.h), sorted and deduplicated.
/// Any file whose normalized path contains one of `exclude_substrings`
/// is dropped (used to keep deliberately-violating lint fixtures out of
/// production gates).
std::vector<std::string> collect_files(
    const std::vector<std::string>& roots,
    const std::vector<std::string>& exclude_substrings = {});

/// "file:line: RULE: message" rendering used by the CLIs and the tests.
std::string format(const finding& f);

/// Reads a whole file; empty string when unreadable.
std::string read_file(const std::string& path);

}  // namespace lint_core

#endif  // MANET_TOOLS_LINT_CORE_COMMON_HPP
