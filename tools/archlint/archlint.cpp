#include "archlint.hpp"

#include <algorithm>
#include <regex>
#include <set>
#include <sstream>

#include "lexer.hpp"     // lint_core: token-aware source view
#include "suppress.hpp"  // lint_core: NOLINT machinery

namespace archlint {

namespace {

std::string trim(const std::string& s) {
  const auto b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  const auto e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

bool is_header(const std::string& path) {
  return lint_core::ends_with(path, ".hpp") ||
         lint_core::ends_with(path, ".hh") || lint_core::ends_with(path, ".h");
}

}  // namespace

// ---------------------------------------------------------------------------
// layers.conf
// ---------------------------------------------------------------------------

layer_contract parse_layer_contract(const std::string& text,
                                    std::string* error) {
  layer_contract c;
  if (error != nullptr) error->clear();
  auto fail = [&](int line, const std::string& what) {
    if (error != nullptr) {
      *error = "line " + std::to_string(line) + ": " + what;
    }
    return layer_contract{};
  };
  std::istringstream in(text);
  std::string raw_line;
  int lineno = 0;
  while (std::getline(in, raw_line)) {
    ++lineno;
    const std::size_t hash = raw_line.find('#');
    std::string line = trim(hash == std::string::npos ? raw_line
                                                      : raw_line.substr(0, hash));
    if (line.empty()) continue;
    std::istringstream ls(line);
    std::string kw;
    ls >> kw;
    if (kw == "layer") {
      std::string name;
      ls >> name;
      if (name.empty()) return fail(lineno, "layer needs a name");
      if (c.rank.count(name) != 0) {
        return fail(lineno, "duplicate layer '" + name + "'");
      }
      c.rank[name] = static_cast<int>(c.layers.size());
      c.layers.push_back(name);
    } else if (kw == "sidecar") {
      // sidecar NAME includes DEP[,DEP...]
      std::string name;
      std::string includes_kw;
      ls >> name >> includes_kw;
      if (name.empty() || includes_kw != "includes") {
        return fail(lineno, "expected: sidecar NAME includes DEP[,DEP...]");
      }
      c.sidecar = name;
      std::string deps;
      std::getline(ls, deps);
      std::istringstream ds(deps);
      std::string dep;
      while (std::getline(ds, dep, ',')) {
        dep = trim(dep);
        if (!dep.empty()) c.sidecar_deps.push_back(dep);
      }
      if (c.sidecar_deps.empty()) {
        return fail(lineno, "sidecar needs at least one dependency");
      }
    } else if (kw == "toplevel") {
      ls >> c.toplevel;
      if (c.toplevel.empty()) return fail(lineno, "toplevel needs a name");
    } else if (kw == "allow") {
      // allow FROM -> TO : reason
      std::string from;
      std::string arrow;
      std::string to;
      ls >> from >> arrow >> to;
      if (from.empty() || arrow != "->" || to.empty()) {
        return fail(lineno, "expected: allow FROM -> TO : reason");
      }
      std::string rest;
      std::getline(ls, rest);
      rest = trim(rest);
      if (rest.empty() || rest[0] != ':' || trim(rest.substr(1)).empty()) {
        return fail(lineno, "allow edge needs a ': reason'");
      }
      c.allowed_edges.push_back({from, to, trim(rest.substr(1))});
    } else {
      return fail(lineno, "unknown directive '" + kw + "'");
    }
  }
  // Cross-check references against declared layers.
  for (const allowed_layer_edge& e : c.allowed_edges) {
    for (const std::string& name : {e.from, e.to}) {
      if (c.rank.count(name) == 0 && name != c.sidecar && name != c.toplevel) {
        return fail(0, "allow edge references unknown layer '" + name + "'");
      }
    }
  }
  for (const std::string& dep : c.sidecar_deps) {
    if (c.rank.count(dep) == 0) {
      return fail(0, "sidecar dependency '" + dep + "' is not a layer");
    }
  }
  return c;
}

std::string layer_of(const layer_contract& c, const std::string& path) {
  const std::string norm = lint_core::normalize_path(path);
  // The segment after the last "src/" (so a fixture tree that embeds its own
  // src/ classifies by the embedded layout, not by living under tools/).
  std::size_t pos = norm.rfind("src/");
  if (pos != std::string::npos && (pos == 0 || norm[pos - 1] == '/')) {
    const std::size_t start = pos + 4;
    const std::size_t slash = norm.find('/', start);
    if (slash != std::string::npos) {
      const std::string seg = norm.substr(start, slash - start);
      if (seg == c.sidecar || c.rank.count(seg) != 0) return seg;
    }
    return "";
  }
  pos = norm.rfind("tools/");
  if (!c.toplevel.empty() && pos != std::string::npos &&
      (pos == 0 || norm[pos - 1] == '/')) {
    return c.toplevel;
  }
  return "";
}

// ---------------------------------------------------------------------------
// Per-file rules
// ---------------------------------------------------------------------------

namespace {

/// ARCH003 guard check: #pragma once, or an #ifndef/#define pair, among the
/// first code lines of the header.
bool has_include_guard(const std::vector<std::string>& code) {
  static const std::regex pragma_re(R"(^\s*#\s*pragma\s+once\b)");
  static const std::regex ifndef_re(R"(^\s*#\s*ifndef\s+\w+)");
  static const std::regex define_re(R"(^\s*#\s*define\s+\w+)");
  bool saw_ifndef = false;
  for (const std::string& l : code) {
    if (std::regex_search(l, pragma_re)) return true;
    if (!saw_ifndef && std::regex_search(l, ifndef_re)) {
      saw_ifndef = true;
      continue;
    }
    if (saw_ifndef && std::regex_search(l, define_re)) return true;
    // Any other non-blank, non-comment code before the guard means the
    // header is unguarded in the way that matters: double inclusion
    // re-evaluates that code.
    if (l.find_first_not_of(" \t") != std::string::npos && !saw_ifndef) {
      return false;
    }
  }
  return false;
}

/// DET009: the handler text between a catch's '{' and its matching '}'.
/// Returns false when no block could be extracted (e.g. function-try-block
/// syntax we do not model).
bool extract_catch_block(const std::vector<std::string>& code,
                         std::size_t line, std::size_t col,
                         std::string* block) {
  // Walk from the 'catch' keyword: first balance the clause parens, then
  // balance the block braces.
  int paren = 0;
  int brace = 0;
  bool in_parens = false;
  bool in_block = false;
  block->clear();
  for (std::size_t i = line; i < code.size() && i < line + 400; ++i) {
    const std::string& l = code[i];
    for (std::size_t j = (i == line ? col : 0); j < l.size(); ++j) {
      const char ch = l[j];
      if (!in_block) {
        if (ch == '(') {
          ++paren;
          in_parens = true;
        } else if (ch == ')') {
          --paren;
        } else if (ch == '{' && in_parens && paren == 0) {
          in_block = true;
          brace = 1;
        } else if (ch == ';' && in_parens && paren == 0) {
          return false;  // no block followed the clause
        }
        continue;
      }
      if (ch == '{') ++brace;
      if (ch == '}') {
        --brace;
        if (brace == 0) return true;
      }
      block->push_back(ch);
    }
    block->push_back('\n');
  }
  return false;
}

}  // namespace

// ---------------------------------------------------------------------------
// Scan
// ---------------------------------------------------------------------------

scan_result scan(const options& opts) {
  scan_result r;
  const std::vector<std::string> files =
      lint_core::collect_files(opts.roots, opts.exclude);
  std::vector<std::string> texts;
  texts.reserve(files.size());
  for (const std::string& f : files) {
    texts.push_back(lint_core::read_file(f));
  }
  r.graph = lint_core::build_include_graph(files, texts);
  for (const std::string& f : r.graph.files) {
    r.file_layer[f] = layer_of(opts.contract, f);
  }

  auto sanctioned = [&](const std::string& from, const std::string& to) {
    for (const allowed_layer_edge& e : opts.contract.allowed_edges) {
      if (e.from == from && e.to == to) return true;
    }
    return false;
  };

  for (std::size_t fi = 0; fi < files.size(); ++fi) {
    const std::string path = lint_core::normalize_path(files[fi]);
    const lint_core::source_view view = lint_core::lex(texts[fi]);
    const std::string layer = r.file_layer[path];
    const layer_contract& c = opts.contract;

    // ARCH suppressions (ARCH000 on malformed); DET suppressions parsed
    // silently — reporting their typos (DET000) is detlint's job.
    const auto arch_sup = lint_core::suppression_table(
        view.raw, "ARCH", [&](std::size_t li, const std::string& message) {
          r.findings.push_back(
              {path, static_cast<int>(li) + 1, "ARCH000", message});
        });
    const auto det_sup = lint_core::suppression_table(
        view.raw, "DET", [](std::size_t, const std::string&) {});

    auto report = [&](std::size_t li, const std::string& rule,
                      const std::string& message) {
      if (lint_core::allowed(opts.allow, rule, path)) return;
      const auto& table = rule.rfind("DET", 0) == 0 ? det_sup : arch_sup;
      if (li < table.size() && lint_core::suppresses(table[li], rule)) return;
      r.findings.push_back({path, static_cast<int>(li) + 1, rule, message});
    };

    // --- ARCH001: the layer contract over this file's include edges -------
    const auto eit = r.graph.edges.find(path);
    if (eit != r.graph.edges.end() && !layer.empty()) {
      for (const lint_core::include_edge& e : eit->second) {
        if (e.resolved.empty()) continue;
        const std::string to = r.file_layer[e.resolved];
        if (to.empty() || to == layer) continue;
        std::string why;
        if (to == c.toplevel) {
          why = "layer '" + layer + "' must not reach into the '" +
                c.toplevel + "' toplevel";
        } else if (layer == c.toplevel) {
          continue;  // tools may include anything
        } else if (to == c.sidecar) {
          continue;  // the sidecar is includable by anyone
        } else if (layer == c.sidecar) {
          if (std::find(c.sidecar_deps.begin(), c.sidecar_deps.end(), to) !=
              c.sidecar_deps.end()) {
            continue;
          }
          why = "sidecar '" + c.sidecar + "' may include only {";
          for (std::size_t k = 0; k < c.sidecar_deps.size(); ++k) {
            why += (k != 0U ? ", " : "") + c.sidecar_deps[k];
          }
          why += "}";
        } else {
          const auto fr = c.rank.find(layer);
          const auto tr = c.rank.find(to);
          if (fr == c.rank.end() || tr == c.rank.end()) continue;
          if (tr->second <= fr->second) continue;  // downward or lateral: fine
          if (sanctioned(layer, to)) continue;
          why = "layer '" + layer + "' (rank " + std::to_string(fr->second) +
                ") must not include layer '" + to + "' (rank " +
                std::to_string(tr->second) + ")";
        }
        report(static_cast<std::size_t>(e.line) - 1, "ARCH001",
               "forbidden cross-layer include of \"" + e.target + "\": " +
                   why + " — move the shared type down a layer, invert the "
                   "dependency, or add a reasoned allow edge to layers.conf");
      }
    }

    // --- ARCH003: public-header self-containment ---------------------------
    if (is_header(path) && !layer.empty() && layer != c.toplevel) {
      if (!has_include_guard(view.code)) {
        report(0, "ARCH003",
               "public header has no include guard (#ifndef/#define or "
               "#pragma once) — double inclusion is an ODR hazard");
      }
      if (eit != r.graph.edges.end()) {
        for (const lint_core::include_edge& e : eit->second) {
          if (e.target.rfind("../", 0) == 0 ||
              e.target.find("/../") != std::string::npos) {
            report(static_cast<std::size_t>(e.line) - 1, "ARCH003",
                   "uplevel include \"" + e.target +
                       "\" escapes the header's directory — spell the "
                       "src/-rooted path so the header is relocatable");
          } else if (e.resolved.empty()) {
            report(static_cast<std::size_t>(e.line) - 1, "ARCH003",
                   "quoted include \"" + e.target +
                       "\" resolves to no scanned file — the header is not "
                       "self-contained from the source tree alone");
          }
        }
      }
    }

    // --- DET008: digest purity of the observability sidecar ----------------
    if (!c.sidecar.empty() && layer == c.sidecar) {
      // A mutable reference/pointer to simulation state in obs code is the
      // hole through which observation perturbs the run. const&, values,
      // and injected callables are all fine.
      static const std::regex det8(
          R"(\b(simulator|network|node|event_queue|event_handle|periodic_timer|cache_store|replica_store|invalidation_protocol|poll_each_read|push_invalidate|pull_ttl|traffic_meter|query_log|trace_writer|fault_injector)\s*[&*])");
      for (std::size_t i = 0; i < view.code.size(); ++i) {
        for (auto it = std::sregex_iterator(view.code[i].begin(),
                                            view.code[i].end(), det8);
             it != std::sregex_iterator(); ++it) {
          // const anywhere before the type on the line covers the
          // `const simulator&` / `simulator const&` spellings.
          const std::string before =
              view.code[i].substr(0, static_cast<std::size_t>(it->position(0)));
          const std::string at_and_after =
              view.code[i].substr(static_cast<std::size_t>(it->position(0)));
          if (before.find("const") != std::string::npos ||
              at_and_after.find("const") != std::string::npos) {
            continue;
          }
          report(i, "DET008",
                 "obs code holds a mutable " +
                     std::string((*it)[0].str().back() == '*' ? "pointer"
                                                              : "reference") +
                     " to sim type '" + (*it)[1].str() +
                     "': observation must not be able to mutate protocol or "
                     "kernel state (golden digests pin obs as side-effect "
                     "free) — take const&, copy the value, or invert the "
                     "dependency through a sink interface");
        }
      }
    }

    // --- DET009: exception swallowing in strict mode -----------------------
    {
      static const std::regex catch_re(R"(\bcatch\s*\()");
      static const std::regex broad_re(
          R"(^\s*(\.\.\.|(const\s+)?std\s*::\s*(exception|runtime_error)\s*&?\s*\w*)\s*$)");
      for (std::size_t i = 0; i < view.code.size(); ++i) {
        std::smatch m;
        std::string line = view.code[i];
        if (!std::regex_search(line, m, catch_re)) continue;
        const std::size_t col = static_cast<std::size_t>(m.position(0));
        // Clause text: between the catch's parens (may span lines).
        std::string clause;
        {
          int depth = 0;
          bool done = false;
          for (std::size_t li = i; li < view.code.size() && li < i + 4 && !done;
               ++li) {
            const std::string& l = view.code[li];
            for (std::size_t j = (li == i ? col : 0); j < l.size(); ++j) {
              if (l[j] == '(') {
                ++depth;
                continue;
              }
              if (l[j] == ')') {
                --depth;
                if (depth == 0) {
                  done = true;
                  break;
                }
                continue;
              }
              if (depth > 0) clause.push_back(l[j]);
            }
          }
        }
        if (!std::regex_match(clause, broad_re)) continue;
        std::string block;
        if (!extract_catch_block(view.code, i, col, &block)) continue;
        if (block.find("throw") != std::string::npos ||
            block.find("rethrow_exception") != std::string::npos ||
            block.find("current_exception") != std::string::npos ||
            block.find("invariant_violation_error") != std::string::npos) {
          continue;
        }
        report(i, "DET009",
               "broad catch (" + trim(clause) +
                   ") swallows every exception including "
                   "invariant_violation_error, so a strict-mode invariant "
                   "breach dies silently here — rethrow, filter the "
                   "invariant error back out, or suppress with a reason");
      }
    }
  }

  // --- ARCH002: include cycles (one representative per scan) ---------------
  const std::vector<std::string> cycle = lint_core::find_include_cycle(r.graph);
  if (!cycle.empty()) {
    std::string chain;
    for (std::size_t i = 0; i < cycle.size(); ++i) {
      chain += (i != 0U ? " -> " : "") + cycle[i];
    }
    // Anchor the finding at the first edge of the cycle.
    int line = 1;
    const auto it = r.graph.edges.find(cycle.front());
    if (it != r.graph.edges.end() && cycle.size() > 1) {
      for (const lint_core::include_edge& e : it->second) {
        if (e.resolved == cycle[1]) {
          line = e.line;
          break;
        }
      }
    }
    r.findings.push_back(
        {cycle.front(), line, "ARCH002",
         "include cycle: " + chain +
             " — break it with a forward declaration or by moving the "
             "shared type down a layer"});
  }

  std::stable_sort(r.findings.begin(), r.findings.end(),
                   [](const finding& a, const finding& b) {
                     if (a.file != b.file) return a.file < b.file;
                     if (a.line != b.line) return a.line < b.line;
                     return a.rule < b.rule;
                   });
  return r;
}

// ---------------------------------------------------------------------------
// Reporting
// ---------------------------------------------------------------------------

std::string layer_summary(const scan_result& r) {
  // Cross-layer fan-out (distinct target layers) and fan-in (distinct
  // source layers) plus raw edge counts, per layer, sorted by name.
  struct stats {
    std::set<std::string> out_layers;
    std::set<std::string> in_layers;
    int out_edges = 0;
    int in_edges = 0;
    int files = 0;
  };
  std::map<std::string, stats> per;
  for (const auto& [file, layer] : r.file_layer) {
    if (!layer.empty()) ++per[layer].files;
  }
  for (const auto& [from, edges] : r.graph.edges) {
    const auto fit = r.file_layer.find(from);
    if (fit == r.file_layer.end() || fit->second.empty()) continue;
    for (const lint_core::include_edge& e : edges) {
      if (e.resolved.empty()) continue;
      const auto tit = r.file_layer.find(e.resolved);
      if (tit == r.file_layer.end() || tit->second.empty()) continue;
      if (tit->second == fit->second) continue;
      per[fit->second].out_layers.insert(tit->second);
      per[fit->second].out_edges += 1;
      per[tit->second].in_layers.insert(fit->second);
      per[tit->second].in_edges += 1;
    }
  }
  std::ostringstream out;
  out << "layer        files  fan-out  fan-in  out-edges  in-edges\n";
  for (const auto& [layer, s] : per) {
    out << layer;
    for (std::size_t i = layer.size(); i < 13; ++i) out << ' ';
    out << s.files << "      " << s.out_layers.size() << "        "
        << s.in_layers.size() << "       " << s.out_edges << "          "
        << s.in_edges << "\n";
  }
  return out.str();
}

std::string to_dot(const scan_result& r) {
  return lint_core::to_dot(r.graph, r.file_layer);
}

std::string format(const finding& f) { return lint_core::format(f); }

}  // namespace archlint
