// archlint fixture: clean top-rank header — exists so lower layers have a
// concrete upward target to (illegally) include.
#ifndef ARCHLINT_FIXTURE_SCENARIO_TOP_HPP
#define ARCHLINT_FIXTURE_SCENARIO_TOP_HPP

namespace fixture {
struct top {};
}  // namespace fixture

#endif  // ARCHLINT_FIXTURE_SCENARIO_TOP_HPP
