// archlint fixture: the two ways the observability sidecar can go wrong —
// including a non-dep layer (ARCH001, line 8) and holding mutable handles
// to simulation state (DET008, lines 13 and 16).
#ifndef ARCHLINT_FIXTURE_OBS_MUTATOR_HPP
#define ARCHLINT_FIXTURE_OBS_MUTATOR_HPP

// NEXT LINE IS PINNED AT 8 — keep the preamble exactly this long.
#include "cache/store.hpp"

namespace fixture {

// Mutable reference into the kernel: line 13.
void probe(simulator& sim);

struct holder {
  traffic_meter* meter;  // mutable pointer: line 16
};

}  // namespace fixture

#endif  // ARCHLINT_FIXTURE_OBS_MUTATOR_HPP
