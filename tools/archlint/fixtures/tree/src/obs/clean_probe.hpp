// archlint fixture: a well-behaved sidecar header — includes only declared
// deps (util) and touches sim state through const references and values.
#ifndef ARCHLINT_FIXTURE_OBS_CLEAN_PROBE_HPP
#define ARCHLINT_FIXTURE_OBS_CLEAN_PROBE_HPP

#include "util/base.hpp"

namespace fixture {

void probe(const simulator& sim);
void probe_const_east(simulator const& sim);
void note(const traffic_meter* meter);

}  // namespace fixture

#endif  // ARCHLINT_FIXTURE_OBS_CLEAN_PROBE_HPP
