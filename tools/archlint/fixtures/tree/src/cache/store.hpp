// archlint fixture: clean mid-rank header — the sidecar fixture includes it
// to demonstrate the sidecar-deps violation.
#ifndef ARCHLINT_FIXTURE_CACHE_STORE_HPP
#define ARCHLINT_FIXTURE_CACHE_STORE_HPP

namespace fixture {
struct store {};
}  // namespace fixture

#endif  // ARCHLINT_FIXTURE_CACHE_STORE_HPP
