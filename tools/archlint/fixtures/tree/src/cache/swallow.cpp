// archlint fixture: DET009 — broad catch handlers that swallow the strict-
// mode invariant signal, plus the three sanctioned escapes (rethrow,
// filter, reasoned suppression).

void risky();

// Swallower: the catch below is line 11; the test pins DET009 there.
static void swallow() {
  try {
    risky();
  } catch (const std::exception&) {
    // deliberately ignored — this is the bug the rule exists for
  }
}

// Rethrow: clean.
static void rethrow() {
  try {
    risky();
  } catch (...) {
    throw;
  }
}

// Filter: inspecting invariant_violation_error keeps the signal alive.
static void filter() {
  try {
    risky();
  } catch (const std::exception& e) {
    if (dynamic_cast<const invariant_violation_error*>(&e) != nullptr) {
      throw;
    }
  }
}

// Reasoned suppression: clean (and the reason is auditable).
static void sanctioned() {
  try {
    risky();
    // NOLINTNEXTLINE-DET(DET009: fixture — swallowing is the specimen here)
  } catch (const std::exception&) {
  }
}
