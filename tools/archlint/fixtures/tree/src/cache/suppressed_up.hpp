// archlint fixture: a well-formed, reasoned ARCH suppression silences the
// upward include on the very next line — and ONLY that line.
#ifndef ARCHLINT_FIXTURE_CACHE_SUPPRESSED_UP_HPP
#define ARCHLINT_FIXTURE_CACHE_SUPPRESSED_UP_HPP

// NOLINTNEXTLINE-ARCH(ARCH001: fixture — sanctioned upward edge specimen)
#include "scenario/top.hpp"

namespace fixture {
struct suppressed_up {};
}  // namespace fixture

#endif  // ARCHLINT_FIXTURE_CACHE_SUPPRESSED_UP_HPP
