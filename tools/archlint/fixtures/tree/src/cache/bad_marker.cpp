// archlint fixture: ARCH000 — malformed suppression markers. A typo in a
// marker must be reported, never silently ignored.

static int value() {
  // The bare marker below is line 6; the test pins ARCH000 there.
  return 1;  // NOLINT-ARCH
}

static int reasonless() {
  // Parenthesized but with an empty reason — also malformed, line 11.
  return 2;  // NOLINT-ARCH(ARCH001:)
}
