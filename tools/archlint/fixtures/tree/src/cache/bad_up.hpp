// archlint fixture: ARCH001 — a cache-layer header reaching up into the
// scenario layer. The include below is line 7; the test pins it.
#ifndef ARCHLINT_FIXTURE_CACHE_BAD_UP_HPP
#define ARCHLINT_FIXTURE_CACHE_BAD_UP_HPP

// NEXT LINE IS PINNED AT 7 — keep the preamble exactly this long.
#include "scenario/top.hpp"

namespace fixture {
struct bad_up {
  top t;
};
}  // namespace fixture

#endif  // ARCHLINT_FIXTURE_CACHE_BAD_UP_HPP
