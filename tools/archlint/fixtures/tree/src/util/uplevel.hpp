// archlint fixture: ARCH003 — an uplevel "../" quoted include ties the
// header to its current directory. The include below is line 7.
#ifndef ARCHLINT_FIXTURE_UTIL_UPLEVEL_HPP
#define ARCHLINT_FIXTURE_UTIL_UPLEVEL_HPP

// NEXT LINE IS PINNED AT 7 — keep the preamble exactly this long.
#include "../util/missing.hpp"

namespace fixture {
struct uplevel {};
}  // namespace fixture

#endif  // ARCHLINT_FIXTURE_UTIL_UPLEVEL_HPP
