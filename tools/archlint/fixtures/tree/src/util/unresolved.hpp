// archlint fixture: ARCH003 — a quoted include that resolves to no scanned
// file: the header cannot be compiled from the source tree alone. The
// include below is line 8.
#ifndef ARCHLINT_FIXTURE_UTIL_UNRESOLVED_HPP
#define ARCHLINT_FIXTURE_UTIL_UNRESOLVED_HPP

// NEXT LINE IS PINNED AT 8 — keep the preamble exactly this long.
#include "util/not_here.hpp"

namespace fixture {
struct unresolved {};
}  // namespace fixture

#endif  // ARCHLINT_FIXTURE_UTIL_UNRESOLVED_HPP
