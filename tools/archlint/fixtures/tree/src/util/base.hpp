// archlint fixture: clean bottom-rank header — a sanctioned sidecar
// dependency target.
#ifndef ARCHLINT_FIXTURE_UTIL_BASE_HPP
#define ARCHLINT_FIXTURE_UTIL_BASE_HPP

namespace fixture {
struct base {};
}  // namespace fixture

#endif  // ARCHLINT_FIXTURE_UTIL_BASE_HPP
