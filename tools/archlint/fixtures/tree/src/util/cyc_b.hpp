// archlint fixture: ARCH002 — the other half of the include cycle.
#ifndef ARCHLINT_FIXTURE_UTIL_CYC_B_HPP
#define ARCHLINT_FIXTURE_UTIL_CYC_B_HPP

#include "util/cyc_a.hpp"

namespace fixture {
struct cyc_b {};
}  // namespace fixture

#endif  // ARCHLINT_FIXTURE_UTIL_CYC_B_HPP
