// archlint fixture: ARCH003 — a public header with no include guard.
// The finding anchors at line 1.

namespace fixture {
struct no_guard {};
}  // namespace fixture
