// archlint fixture: ARCH002 — one half of a two-header include cycle.
// Same layer on both sides, so the only finding is the cycle itself.
#ifndef ARCHLINT_FIXTURE_UTIL_CYC_A_HPP
#define ARCHLINT_FIXTURE_UTIL_CYC_A_HPP

#include "util/cyc_b.hpp"

namespace fixture {
struct cyc_a {};
}  // namespace fixture

#endif  // ARCHLINT_FIXTURE_UTIL_CYC_A_HPP
