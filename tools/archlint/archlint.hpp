// archlint — architecture lint for the simulator source tree.
//
// Where detlint polices determinism one statement at a time, archlint
// polices the shape of the codebase: which layer may include which, whether
// the include graph is acyclic, and whether the observability sidecar stays
// a read-only probe. It shares tools/lint_core with detlint (the token-aware
// lexer, the NOLINT suppression machinery, and the quoted-include graph), so
// a commented-out include or an include spelled inside a string literal can
// never create a phantom edge.
//
// The layer contract is declarative, in tools/archlint/layers.conf:
//
//   layer util            # lowest rank first; a file in layer L may include
//   layer geom            # only layers of rank <= rank(L)
//   ...
//   sidecar obs includes util    # includable by anyone; includes only util
//   toplevel tools               # above all layers; nothing includes it
//   allow chaos -> scenario : reason   # sanctioned upward edge
//
// Rules:
//
//   ARCH000  malformed or reasonless ARCH suppression marker (mirrors
//            detlint's DET000 so a typo can never silently disable a rule).
//   ARCH001  forbidden cross-layer include: an edge from layer A to layer B
//            with rank(B) > rank(A), the obs sidecar including anything but
//            its declared deps, or any src/ layer including tools/. Allow
//            edges in layers.conf and NOLINT-ARCH(ARCH001: reason) exempt.
//   ARCH002  include cycle anywhere in the scanned graph. One finding per
//            scan, naming a representative cycle f0 -> ... -> f0.
//   ARCH003  non-self-contained public header: missing include guard (or
//            #pragma once), an uplevel "../" quoted include, or a quoted
//            include that resolves to no scanned file.
//   DET008   digest purity: code under src/obs/ taking a mutable reference
//            or pointer to a simulation-state type (simulator, network,
//            node, event_queue, caches, protocol, meters, writers).
//            Observation must never mutate protocol or kernel state — the
//            golden digests pin that it cannot perturb a run.
//   DET009   a catch (...) / catch (std::exception&) / catch
//            (std::runtime_error&) handler whose block neither rethrows nor
//            inspects invariant_violation_error: in strict (invariant-
//            checking) builds such a handler swallows the very signal the
//            run is supposed to die on. Rethrow, filter, or suppress with a
//            reason.
//
// DET008/DET009 are numbered in the DET space because they are determinism
// rules — they live here only because they need the include-graph / scope
// machinery. They are suppressed with NOLINT-DET like every other DET rule;
// malformed NOLINT-DET markers stay detlint's job (DET000) so the same typo
// is not reported twice.
#ifndef MANET_TOOLS_ARCHLINT_ARCHLINT_HPP
#define MANET_TOOLS_ARCHLINT_ARCHLINT_HPP

#include <map>
#include <string>
#include <vector>

#include "common.hpp"         // lint_core: finding, allow_entry
#include "include_graph.hpp"  // lint_core: include_graph

namespace archlint {

using finding = lint_core::finding;
using allow_entry = lint_core::allow_entry;

/// One sanctioned upward edge from layers.conf: `allow FROM -> TO : reason`.
struct allowed_layer_edge {
  std::string from;
  std::string to;
  std::string reason;
};

/// The parsed layer contract.
struct layer_contract {
  /// Layer names in rank order, lowest (most fundamental) first.
  std::vector<std::string> layers;
  /// name -> rank (index into `layers`).
  std::map<std::string, int> rank;
  /// Sidecar layer ("" if none): includable by anyone, includes only
  /// `sidecar_deps` (and itself).
  std::string sidecar;
  std::vector<std::string> sidecar_deps;
  /// Toplevel pseudo-layer ("" if none): may include anything; nothing may
  /// include it.
  std::string toplevel;
  std::vector<allowed_layer_edge> allowed_edges;
};

/// Parses layers.conf text. On a grammar error returns an empty contract and
/// sets `*error` to a "line N: what" diagnostic (empty on success).
layer_contract parse_layer_contract(const std::string& text,
                                    std::string* error);

/// The layer owning `path`: the path segment after the *last* "src/" (so
/// fixture trees under tools/ still classify), the toplevel name when the
/// path runs through "tools/", or "" when unclassified.
std::string layer_of(const layer_contract& c, const std::string& path);

struct options {
  /// Files or directories to scan.
  std::vector<std::string> roots;
  /// Path substrings to drop (deliberately-violating fixtures).
  std::vector<std::string> exclude = {"/fixtures/"};
  layer_contract contract;
  /// Per-rule path exemptions (none by default — layers.conf allow edges
  /// and NOLINT markers are the sanctioned mechanisms).
  std::vector<allow_entry> allow;
};

struct scan_result {
  std::vector<finding> findings;  ///< sorted by (file, line, rule)
  lint_core::include_graph graph;
  /// file -> layer name ("" = unclassified), for DOT clustering and the
  /// fan-in/fan-out summary.
  std::map<std::string, std::string> file_layer;
};

/// Full scan: include graph + ARCH001/ARCH002 over it, ARCH003/DET008/
/// DET009 per file, ARCH000 for malformed ARCH suppression markers.
scan_result scan(const options& opts);

/// Per-layer fan-in/fan-out table over cross-layer edges, plus totals —
/// the CI artifact next to the DOT export.
std::string layer_summary(const scan_result& r);

/// Graphviz DOT of the scanned include graph, clustered by layer.
std::string to_dot(const scan_result& r);

/// "file:line: RULE: message" rendering used by the CLI and the tests.
std::string format(const finding& f);

}  // namespace archlint

#endif  // MANET_TOOLS_ARCHLINT_ARCHLINT_HPP
