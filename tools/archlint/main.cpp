// archlint CLI.
//
//   archlint --config tools/archlint/layers.conf [options] ROOT...
//
//   --config FILE     layer contract (required)
//   --dot FILE        write the include graph as Graphviz DOT
//   --summary FILE    write the per-layer fan-in/fan-out table
//   --exclude SUBSTR  drop files whose path contains SUBSTR (repeatable;
//                     default: /fixtures/)
//
// Exit status 1 when any finding survives suppression, 2 on usage or
// config errors. Used by the `lint` target, the archlint ctest entry, and
// the CI lint job (which uploads the DOT and summary as artifacts).
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "archlint.hpp"

int main(int argc, char** argv) {
  std::string config_path;
  std::string dot_path;
  std::string summary_path;
  std::vector<std::string> roots;
  std::vector<std::string> exclude;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto value = [&](const char* flag) -> std::string {
      if (i + 1 >= argc) {
        std::cerr << "archlint: " << flag << " needs a value\n";
        std::exit(2);
      }
      return argv[++i];
    };
    if (arg == "--config") {
      config_path = value("--config");
    } else if (arg == "--dot") {
      dot_path = value("--dot");
    } else if (arg == "--summary") {
      summary_path = value("--summary");
    } else if (arg == "--exclude") {
      exclude.push_back(value("--exclude"));
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: archlint --config layers.conf [--dot FILE] "
                   "[--summary FILE] [--exclude SUBSTR]... ROOT...\n";
      return 0;
    } else if (!arg.empty() && arg[0] == '-') {
      std::cerr << "archlint: unknown option " << arg << "\n";
      return 2;
    } else {
      roots.push_back(arg);
    }
  }
  if (config_path.empty() || roots.empty()) {
    std::cerr << "usage: archlint --config layers.conf [--dot FILE] "
                 "[--summary FILE] [--exclude SUBSTR]... ROOT...\n";
    return 2;
  }

  const std::string config_text = lint_core::read_file(config_path);
  if (config_text.empty()) {
    std::cerr << "archlint: cannot read config " << config_path << "\n";
    return 2;
  }
  std::string error;
  archlint::options opts;
  opts.contract = archlint::parse_layer_contract(config_text, &error);
  if (!error.empty()) {
    std::cerr << "archlint: " << config_path << ": " << error << "\n";
    return 2;
  }
  opts.roots = roots;
  if (!exclude.empty()) opts.exclude = exclude;

  const archlint::scan_result result = archlint::scan(opts);

  if (!dot_path.empty()) {
    std::ofstream out(dot_path);
    out << archlint::to_dot(result);
  }
  if (!summary_path.empty()) {
    std::ofstream out(summary_path);
    out << archlint::layer_summary(result);
  }

  for (const archlint::finding& f : result.findings) {
    std::cout << archlint::format(f) << "\n";
  }
  if (!result.findings.empty()) {
    std::cout << result.findings.size() << " finding(s)\n";
    return 1;
  }
  return 0;
}
