// scenariomatrix: runs a declarative scenario-matrix spec (see
// scenario/matrix.hpp for the grammar) across the thread-pooled executor,
// evaluates per-cell acceptance checks, and writes human + machine reports.
//
//   scenariomatrix SPEC [--jobs=N] [--report=FILE] [--trace-dir=DIR]
//                       [--no-checks] [--list] [--metrics] [key=value ...]
//
// key=value arguments override the spec's [base] section (axes still win for
// their own keys). Exit code: 0 = all cells passed, 1 = at least one
// acceptance check failed, 2 = usage/spec error.
#include <cstdio>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "scenario/matrix.hpp"
#include "tracestat.hpp"

namespace {

int usage() {
  std::fprintf(
      stderr,
      "usage: scenariomatrix SPEC [--jobs=N] [--report=FILE]\n"
      "                      [--trace-dir=DIR] [--no-checks] [--list]\n"
      "                      [--metrics] [key=value ...]\n"
      "  SPEC           matrix spec file (scenario/matrix.hpp documents the\n"
      "                 grammar; experiments/*.matrix are examples)\n"
      "  --jobs=N       worker threads (1 = serial, 0 = all cores); cell\n"
      "                 digests are identical for any value\n"
      "  --report=FILE  write the machine-readable JSONL cell report here\n"
      "  --trace-dir=DIR capture per-cell traces for cells with trace.*\n"
      "                 checks (created if missing)\n"
      "  --no-checks    run the grid without evaluating acceptance checks\n"
      "  --list         print the expanded cells and exit without running\n"
      "  --metrics      print the check-able metric names and exit\n"
      "  key=value      extra [base] overrides applied to every cell\n");
  return 2;
}

bool flag_value(const std::string& arg, const char* name, std::string& out) {
  const std::string prefix = std::string(name) + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  out = arg.substr(prefix.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  std::string spec_path;
  std::string report_path;
  manet::matrix_run_options opt;
  opt.trace_metric = manet::tracestat::matrix_trace_metric;
  bool list_only = false;
  std::vector<std::pair<std::string, std::string>> overrides;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (arg == "--metrics") {
      for (const std::string& name : manet::metric_names()) {
        std::printf("%s\n", name.c_str());
      }
      std::printf("metrics.NAME (registry snapshot), trace.* (see "
                  "tools/tracestat/tracestat.hpp)\n");
      return 0;
    } else if (arg == "--list") {
      list_only = true;
    } else if (arg == "--no-checks") {
      opt.run_checks = false;
    } else if (flag_value(arg, "--jobs", value)) {
      opt.jobs = std::atoi(value.c_str());
    } else if (flag_value(arg, "--report", value)) {
      report_path = value;
    } else if (flag_value(arg, "--trace-dir", value)) {
      opt.trace_dir = value;
    } else if (arg.rfind("--", 0) == 0) {
      std::fprintf(stderr, "scenariomatrix: unknown flag '%s'\n", arg.c_str());
      return usage();
    } else if (arg.find('=') != std::string::npos) {
      const std::size_t eq = arg.find('=');
      overrides.emplace_back(arg.substr(0, eq), arg.substr(eq + 1));
    } else if (spec_path.empty()) {
      spec_path = arg;
    } else {
      std::fprintf(stderr, "scenariomatrix: extra positional argument '%s'\n",
                   arg.c_str());
      return usage();
    }
  }
  if (spec_path.empty()) return usage();

  try {
    manet::matrix_spec spec = manet::matrix_spec::load(spec_path);
    for (const auto& [k, v] : overrides) spec.base.emplace_back(k, v);

    if (list_only) {
      const std::vector<manet::matrix_cell> cells =
          manet::expand_matrix(spec);
      for (const manet::matrix_cell& c : cells) {
        std::printf("%3zu  %s  protocol=%s\n", c.index, c.label.c_str(),
                    c.protocol.c_str());
      }
      std::printf("%zu cells\n", cells.size());
      return 0;
    }

    if (!opt.trace_dir.empty()) {
      std::filesystem::create_directories(opt.trace_dir);
    }
    opt.progress = [](const manet::matrix_cell_result& c) {
      std::fprintf(stderr, "done %s [%s]\n", c.label.c_str(),
                   c.passed() ? "ok" : "FAIL");
    };

    const manet::matrix_report report = manet::run_matrix(spec, opt);
    std::printf("%s", report.render_table().c_str());

    if (!report_path.empty()) {
      std::ofstream out(report_path);
      if (!out) {
        std::fprintf(stderr, "scenariomatrix: cannot write '%s'\n",
                     report_path.c_str());
        return 2;
      }
      out << report.to_jsonl();
      std::printf("report: %s\n", report_path.c_str());
    }
    return report.passed() ? 0 : 1;
    // Top-level CLI handler: reports on stderr and exits nonzero, so an
    // invariant violation still fails the run — nothing is swallowed.
    // NOLINTNEXTLINE-DET(DET009: top-level CLI handler reports and exits nonzero)
  } catch (const std::exception& e) {
    std::fprintf(stderr, "scenariomatrix: %s\n", e.what());
    return 2;
  }
}
