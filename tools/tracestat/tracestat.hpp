// tracestat: offline analyzer for the flight-recorder JSONL traces written
// by metrics/trace_writer (and the time-series files written by
// obs/sampler). Reconstructs causal propagation trees from the per-event
// `trace` ids, computes per-update time-to-consistency (TTC) and per-query
// latency/phase breakdowns, and re-validates causal invariants offline
// (--check): timestamps never go backwards, every received frame has a
// matching origination and a relayer that heard it first, every traced
// answer follows its query, per-copy versions never regress.
//
// Built as a small static library so the test suite can drive the parser
// and the analyses directly; tools/tracestat/main.cpp wraps it in a CLI.
#ifndef MANET_TOOLS_TRACESTAT_HPP
#define MANET_TOOLS_TRACESTAT_HPP

#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <vector>

namespace manet::tracestat {

/// One flat JSONL record: numbers (and booleans, as 0/1) in `num`, strings
/// in `str`. The schemas in trace_writer.cpp are all one level deep.
struct trace_event {
  double t = 0;
  std::string ev;
  std::map<std::string, double> num;
  std::map<std::string, std::string> str;

  bool has(const std::string& key) const { return num.count(key) != 0; }
  double get(const std::string& key, double dflt = 0) const {
    auto it = num.find(key);
    return it == num.end() ? dflt : it->second;
  }
  std::uint64_t uget(const std::string& key) const {
    return static_cast<std::uint64_t>(get(key));
  }
  std::string sget(const std::string& key) const {
    auto it = str.find(key);
    return it == str.end() ? std::string() : it->second;
  }
};

/// Parses one JSONL line. Returns false (and leaves `out` unspecified) on
/// malformed input; blank lines also return false.
bool parse_line(const std::string& line, trace_event& out);

/// Loads a whole trace file in file order. Throws std::runtime_error when
/// the file cannot be opened; malformed lines are counted, not fatal.
struct trace_file {
  std::vector<trace_event> events;
  std::uint64_t malformed_lines = 0;
};
trace_file load(const std::string& path);

/// Simple order statistics over an unsorted sample (empty -> 0).
double quantile(std::vector<double> xs, double q);

/// Per-update propagation outcome.
struct update_ttc {
  std::uint32_t item = 0;
  std::uint64_t version = 0;
  double t = 0;                 ///< update timestamp
  std::uint64_t trace = 0;
  std::size_t holders = 0;      ///< nodes holding an older copy at update time
  std::size_t caught_up = 0;    ///< holders that applied >= version later
  double ttc_s = 0;             ///< max apply latency over caught-up holders
  bool complete = false;        ///< every holder caught up before trace end
};

/// Per-query latency with a causal phase breakdown. Phases classify the
/// one-hop transmissions carrying the query's trace id between query and
/// answer: route discovery (RREQ/RREP/RERR), poll traffic (kinds containing
/// "POLL" without "ACK"), and content transfer (everything else).
struct query_latency {
  std::uint64_t trace = 0;
  double t_query = 0;
  double latency_s = 0;
  bool answered = false;
  bool stale = false;
  std::uint64_t discovery_frames = 0;
  std::uint64_t poll_frames = 0;
  std::uint64_t transfer_frames = 0;
};

struct analysis {
  std::map<std::string, std::uint64_t> event_counts;
  std::vector<update_ttc> updates;
  std::vector<query_latency> queries;

  /// TTC sample (seconds) over updates with at least one caught-up holder.
  std::vector<double> ttc_sample() const;
  /// Latency sample (seconds) over answered queries.
  std::vector<double> latency_sample() const;
};

/// Runs the full offline analysis over events in file order.
analysis analyze(const trace_file& tf);

/// Causal-invariant violations (empty = clean). Capped at `max_violations`
/// messages so a corrupt trace cannot flood the caller.
std::vector<std::string> check(const trace_file& tf,
                               std::size_t max_violations = 20);

/// Renders up to `max_trees` propagation trees (largest first) as indented
/// text: the root update/query, then each event carrying the trace id.
std::string render_trees(const trace_file& tf, std::size_t max_trees);

/// Renders a time-series file (obs/sampler JSONL) as a fixed-width table of
/// per-window values — the stale-rate / hit-ratio curves.
std::string render_series(const std::string& path);

/// Human-readable summary of an analysis (event counts, TTC percentiles,
/// query latency phases).
std::string render_summary(const analysis& a);

/// Resolver for the scenario matrix's "trace.*" acceptance-check metrics
/// (scenario/matrix.hpp's trace_metric_resolver signature). Loads the
/// cell's JSONL trace and serves:
///   trace.events               total parsed events
///   trace.malformed_lines      lines the parser rejected
///   trace.causal_violations    offline check() finding count
///   trace.ttc_p50_s|p95|p99    time-to-consistency percentiles (seconds)
///   trace.latency_p50_s|p95|p99  answered-query latency percentiles
///   trace.updates_complete     fraction of updates whose holders all
///                              caught up before trace end (1.0 if none)
/// Returns false for unknown metric names; throws std::runtime_error when
/// the trace file cannot be opened.
bool matrix_trace_metric(const std::string& trace_path,
                         const std::string& metric, double& out);

}  // namespace manet::tracestat

#endif  // MANET_TOOLS_TRACESTAT_HPP
