// tracestat CLI. Usage:
//   tracestat [--check] [--trees=N] [--series=PATH] TRACE.jsonl
//
// Default mode prints the offline analysis: event counts, per-update
// time-to-consistency percentiles and the per-query latency/phase
// breakdown. --check additionally re-validates the causal invariants
// (monotone timestamps, every relayed frame has a parent, answers follow
// their queries, versions never regress) and exits nonzero on violation.
// --series renders a sampler JSONL file as per-window curves; it works with
// or without a trace argument.
#include <cstdio>
#include <exception>
#include <string>
#include <vector>

#include "tracestat.hpp"

int main(int argc, char** argv) {
  bool do_check = false;
  std::size_t trees = 0;
  std::string series_path;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--check") {
      do_check = true;
    } else if (arg.rfind("--trees=", 0) == 0) {
      trees = static_cast<std::size_t>(std::stoul(arg.substr(8)));
    } else if (arg.rfind("--series=", 0) == 0) {
      series_path = arg.substr(9);
    } else if (arg == "--help" || arg == "-h" || arg.rfind("--", 0) == 0) {
      std::printf(
          "usage: tracestat [--check] [--trees=N] [--series=PATH] "
          "[TRACE.jsonl]\n");
      return arg == "--help" || arg == "-h" ? 0 : 2;
    } else {
      paths.push_back(arg);
    }
  }
  if (paths.empty() && series_path.empty()) {
    std::fprintf(stderr, "tracestat: no trace or series file given\n");
    return 2;
  }

  try {
    int rc = 0;
    for (const std::string& path : paths) {
      const manet::tracestat::trace_file tf = manet::tracestat::load(path);
      std::printf("== %s: %zu events", path.c_str(), tf.events.size());
      if (tf.malformed_lines > 0) {
        std::printf(" (%llu malformed lines)",
                    static_cast<unsigned long long>(tf.malformed_lines));
      }
      std::printf(" ==\n");
      const manet::tracestat::analysis a = manet::tracestat::analyze(tf);
      std::printf("%s", manet::tracestat::render_summary(a).c_str());
      if (trees > 0) {
        std::printf("%s", manet::tracestat::render_trees(tf, trees).c_str());
      }
      if (do_check) {
        const std::vector<std::string> violations =
            manet::tracestat::check(tf);
        if (violations.empty() && tf.malformed_lines == 0) {
          std::printf("check: OK\n");
        } else {
          for (const std::string& v : violations) {
            std::fprintf(stderr, "check: %s\n", v.c_str());
          }
          if (tf.malformed_lines > 0) {
            std::fprintf(stderr, "check: %llu malformed lines\n",
                         static_cast<unsigned long long>(tf.malformed_lines));
          }
          rc = 1;
        }
      }
    }
    if (!series_path.empty()) {
      std::printf("%s",
                  manet::tracestat::render_series(series_path).c_str());
    }
    return rc;
    // Top-level CLI handler: reports on stderr and exits nonzero, so an
    // invariant violation still fails the run — nothing is swallowed.
    // NOLINTNEXTLINE-DET(DET009: top-level CLI handler reports and exits nonzero)
  } catch (const std::exception& e) {
    std::fprintf(stderr, "tracestat: %s\n", e.what());
    return 2;
  }
}
