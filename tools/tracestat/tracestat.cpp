#include "tracestat.hpp"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <stdexcept>
#include <unordered_map>
#include <unordered_set>

#include "metrics/trace_format.hpp"

namespace manet::tracestat {

namespace {

void skip_ws(const std::string& s, std::size_t& i) {
  while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
}

bool parse_string(const std::string& s, std::size_t& i, std::string& out) {
  if (i >= s.size() || s[i] != '"') return false;
  ++i;
  out.clear();
  while (i < s.size() && s[i] != '"') {
    if (s[i] == '\\' && i + 1 < s.size()) ++i;  // keep escaped char verbatim
    out.push_back(s[i]);
    ++i;
  }
  if (i >= s.size()) return false;
  ++i;  // closing quote
  return true;
}

}  // namespace

namespace {

/// Parses one flat JSON object without requiring any particular field —
/// shared by the trace parser (which demands "ev") and the series renderer
/// (whose sampler windows carry only t0/t1 and the series columns).
bool parse_flat(const std::string& line, trace_event& out) {
  std::size_t i = 0;
  skip_ws(line, i);
  if (i >= line.size() || line[i] != '{') return false;
  ++i;
  out = trace_event{};
  skip_ws(line, i);
  if (i < line.size() && line[i] == '}') return true;  // empty object
  while (true) {
    skip_ws(line, i);
    std::string key;
    if (!parse_string(line, i, key)) return false;
    skip_ws(line, i);
    if (i >= line.size() || line[i] != ':') return false;
    ++i;
    skip_ws(line, i);
    if (i >= line.size()) return false;
    if (line[i] == '"') {
      std::string value;
      if (!parse_string(line, i, value)) return false;
      out.str[key] = value;
    } else if (line.compare(i, 4, "true") == 0) {
      out.num[key] = 1;
      i += 4;
    } else if (line.compare(i, 5, "false") == 0) {
      out.num[key] = 0;
      i += 5;
    } else {
      const std::size_t start = i;
      while (i < line.size() && line[i] != ',' && line[i] != '}') ++i;
      try {
        out.num[key] = std::stod(line.substr(start, i - start));
      } catch (const std::invalid_argument&) {
        return false;
      } catch (const std::out_of_range&) {
        return false;
      }
    }
    skip_ws(line, i);
    if (i >= line.size()) return false;
    if (line[i] == '}') break;
    if (line[i] != ',') return false;
    ++i;
  }
  out.t = out.get("t");
  out.ev = out.sget("ev");
  return true;
}

}  // namespace

bool parse_line(const std::string& line, trace_event& out) {
  return parse_flat(line, out) && !out.ev.empty();
}

trace_file load(const std::string& path) {
  trace_file tf;
  if (is_binary_trace(path)) {
    // Binary flight-recorder capture: stream each record through the shared
    // JSONL renderer and the same line parser, so every downstream analysis
    // (TTC percentiles, propagation trees) sees byte-identical input to a
    // JSONL capture of the same seed.
    binary_trace_stats stats;
    std::string error;
    const bool ok = read_binary_trace(
        path,
        [&tf](const char* line, std::size_t len) {
          trace_event ev;
          if (len > 0 && parse_line(std::string(line, len), ev)) {
            tf.events.push_back(std::move(ev));
          } else {
            ++tf.malformed_lines;
          }
        },
        &stats, &error);
    if (!ok) throw std::runtime_error("tracestat: " + error);
    if (stats.truncated_tail) ++tf.malformed_lines;
    return tf;
  }
  std::ifstream in(path);
  if (!in) throw std::runtime_error("tracestat: cannot open '" + path + "'");
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty()) continue;
    trace_event ev;
    if (parse_line(line, ev)) {
      tf.events.push_back(std::move(ev));
    } else {
      ++tf.malformed_lines;
    }
  }
  return tf;
}

double quantile(std::vector<double> xs, double q) {
  if (xs.empty()) return 0;
  std::sort(xs.begin(), xs.end());
  const double pos = q * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return xs[lo] + (xs[hi] - xs[lo]) * frac;
}

std::vector<double> analysis::ttc_sample() const {
  std::vector<double> out;
  for (const update_ttc& u : updates) {
    if (u.caught_up > 0) out.push_back(u.ttc_s);
  }
  return out;
}

std::vector<double> analysis::latency_sample() const {
  std::vector<double> out;
  for (const query_latency& q : queries) {
    if (q.answered) out.push_back(q.latency_s);
  }
  return out;
}

namespace {

std::uint64_t node_item_key(std::uint64_t node, std::uint64_t item) {
  return (node << 32) | item;
}

/// Phase classes for the query breakdown.
enum class frame_class { discovery, poll, transfer };

frame_class classify_kind(const std::string& kind) {
  if (kind == "RREQ" || kind == "RREP" || kind == "RERR") {
    return frame_class::discovery;
  }
  if (kind.find("POLL") != std::string::npos &&
      kind.find("ACK") == std::string::npos) {
    return frame_class::poll;
  }
  return frame_class::transfer;
}

}  // namespace

analysis analyze(const trace_file& tf) {
  analysis a;

  // Per-(node,item) apply history in file order: (t, version).
  std::unordered_map<std::uint64_t, std::vector<std::pair<double, std::uint64_t>>>
      applies;
  std::unordered_map<std::uint64_t, std::vector<std::uint64_t>> nodes_of_item;
  // Open queries by trace id (index into a.queries).
  std::unordered_map<std::uint64_t, std::size_t> open_query;

  for (const trace_event& ev : tf.events) {
    ++a.event_counts[ev.ev];
    if (ev.ev == "apply") {
      const std::uint64_t node = ev.uget("node");
      const std::uint64_t item = ev.uget("item");
      auto& hist = applies[node_item_key(node, item)];
      if (hist.empty()) nodes_of_item[item].push_back(node);
      hist.emplace_back(ev.t, ev.uget("version"));
    } else if (ev.ev == "update") {
      update_ttc u;
      u.item = static_cast<std::uint32_t>(ev.uget("item"));
      u.version = ev.uget("version");
      u.t = ev.t;
      u.trace = ev.uget("trace");
      a.updates.push_back(u);
    } else if (ev.ev == "query") {
      const std::uint64_t trace = ev.uget("trace");
      if (trace != 0) {
        query_latency q;
        q.trace = trace;
        q.t_query = ev.t;
        open_query[trace] = a.queries.size();
        a.queries.push_back(q);
      }
    } else if (ev.ev == "answer") {
      const std::uint64_t trace = ev.uget("trace");
      auto it = open_query.find(trace);
      if (it != open_query.end()) {
        query_latency& q = a.queries[it->second];
        q.answered = true;
        q.latency_s = ev.t - q.t_query;
        q.stale = ev.get("stale") != 0;
        open_query.erase(it);
      }
    } else if (ev.ev == "send") {
      const std::uint64_t trace = ev.uget("trace");
      auto it = open_query.find(trace);
      if (it != open_query.end()) {
        query_latency& q = a.queries[it->second];
        switch (classify_kind(ev.sget("kind"))) {
          case frame_class::discovery: ++q.discovery_frames; break;
          case frame_class::poll: ++q.poll_frames; break;
          case frame_class::transfer: ++q.transfer_frames; break;
        }
      }
    }
  }

  // TTC: a holder is a node whose last apply before the update carries an
  // older version (evictions are not traced, so "still holding" is an
  // approximation — a holder that silently evicted shows up as incomplete).
  for (update_ttc& u : a.updates) {
    auto nit = nodes_of_item.find(u.item);
    if (nit == nodes_of_item.end()) continue;
    for (const std::uint64_t node : nit->second) {
      const auto& hist = applies[node_item_key(node, u.item)];
      std::uint64_t held = 0;
      bool holds = false;
      for (const auto& [t, v] : hist) {
        if (t > u.t) break;
        held = v;
        holds = true;
      }
      if (!holds || held >= u.version) continue;
      ++u.holders;
      for (const auto& [t, v] : hist) {
        if (t >= u.t && v >= u.version) {
          ++u.caught_up;
          u.ttc_s = std::max(u.ttc_s, t - u.t);
          break;
        }
      }
    }
    u.complete = u.holders > 0 && u.caught_up == u.holders;
  }
  return a;
}

std::vector<std::string> check(const trace_file& tf,
                               std::size_t max_violations) {
  std::vector<std::string> out;
  auto fail = [&](const std::string& msg) {
    if (out.size() < max_violations) out.push_back(msg);
  };

  double last_t = 0;
  // uid -> origination time; uid -> nodes that have received the frame.
  std::unordered_map<std::uint64_t, double> sent_at;
  std::unordered_map<std::uint64_t, std::unordered_set<std::uint64_t>> heard_by;
  std::unordered_set<std::uint64_t> seen_query_traces;
  std::unordered_map<std::uint64_t, std::uint64_t> version_of;

  for (std::size_t i = 0; i < tf.events.size(); ++i) {
    const trace_event& ev = tf.events[i];
    char where[48];
    std::snprintf(where, sizeof where, "event %zu (t=%.6f)", i, ev.t);
    if (ev.t + 1e-9 < last_t) {
      fail(std::string(where) + ": timestamp went backwards");
    }
    last_t = std::max(last_t, ev.t);

    if (ev.ev == "send") {
      sent_at[ev.uget("uid")] = ev.t;
    } else if (ev.ev == "rx") {
      const std::uint64_t uid = ev.uget("uid");
      const auto sit = sent_at.find(uid);
      if (sit == sent_at.end()) {
        fail(std::string(where) + ": rx of uid " + std::to_string(uid) +
             " with no prior send (orphan frame)");
      } else if (ev.t + 1e-9 < sit->second) {
        fail(std::string(where) + ": rx of uid " + std::to_string(uid) +
             " before its send (span ends before it starts)");
      }
      const std::uint64_t from = ev.uget("from");
      const std::uint64_t src = ev.uget("src");
      if (from != src && heard_by[uid].count(from) == 0) {
        fail(std::string(where) + ": uid " + std::to_string(uid) +
             " relayed by node " + std::to_string(from) +
             " which never received it (no parent)");
      }
      heard_by[uid].insert(ev.uget("node"));
    } else if (ev.ev == "query") {
      const std::uint64_t trace = ev.uget("trace");
      if (trace != 0) seen_query_traces.insert(trace);
    } else if (ev.ev == "answer") {
      const std::uint64_t trace = ev.uget("trace");
      if (trace != 0 && seen_query_traces.count(trace) == 0) {
        fail(std::string(where) + ": answer with trace " +
             std::to_string(trace) + " but no earlier query");
      }
    } else if (ev.ev == "apply") {
      const std::uint64_t key =
          node_item_key(ev.uget("node"), ev.uget("item"));
      const std::uint64_t v = ev.uget("version");
      auto vit = version_of.find(key);
      if (vit != version_of.end() && v < vit->second) {
        fail(std::string(where) + ": node " +
             std::to_string(ev.uget("node")) + " item " +
             std::to_string(ev.uget("item")) + " applied version " +
             std::to_string(v) + " after " + std::to_string(vit->second) +
             " (version regressed)");
      }
      version_of[key] = v;
    }
  }
  return out;
}

std::string render_trees(const trace_file& tf, std::size_t max_trees) {
  // Group events by trace id, in file order, keyed to first appearance.
  std::unordered_map<std::uint64_t, std::vector<const trace_event*>> by_trace;
  std::vector<std::uint64_t> order;
  for (const trace_event& ev : tf.events) {
    const auto it = ev.num.find("trace");
    if (it == ev.num.end()) continue;
    const auto trace = static_cast<std::uint64_t>(it->second);
    if (trace == 0) continue;
    auto& bucket = by_trace[trace];
    if (bucket.empty()) order.push_back(trace);
    bucket.push_back(&ev);
  }
  std::stable_sort(order.begin(), order.end(),
                   [&](std::uint64_t a, std::uint64_t b) {
                     return by_trace[a].size() > by_trace[b].size();
                   });
  if (order.size() > max_trees) order.resize(max_trees);

  std::ostringstream os;
  char buf[256];
  for (const std::uint64_t trace : order) {
    const auto& evs = by_trace[trace];
    std::snprintf(buf, sizeof buf, "trace %llu (%zu events)\n",
                  static_cast<unsigned long long>(trace), evs.size());
    os << buf;
    for (const trace_event* ev : evs) {
      int depth = 1;
      if (ev->ev == "rx") depth = 1 + static_cast<int>(ev->get("hops")) + 1;
      else if (ev->ev == "apply" || ev->ev == "inval" || ev->ev == "answer")
        depth = 2;
      for (int d = 0; d < depth; ++d) os << "  ";
      std::snprintf(buf, sizeof buf, "%-6s t=%.6f", ev->ev.c_str(), ev->t);
      os << buf;
      if (ev->has("node")) os << " node=" << ev->uget("node");
      if (!ev->sget("kind").empty()) os << " kind=" << ev->sget("kind");
      if (ev->has("item")) os << " item=" << ev->uget("item");
      if (ev->has("version")) os << " v=" << ev->uget("version");
      if (ev->has("uid")) os << " uid=" << ev->uget("uid");
      os << "\n";
    }
  }
  return os.str();
}

std::string render_series(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("tracestat: cannot open '" + path + "'");
  // Sampler windows have no "ev" field, so bypass the trace-schema check.
  std::vector<trace_event> windows;
  std::string line;
  while (std::getline(in, line)) {
    trace_event w;
    if (!line.empty() && parse_flat(line, w)) windows.push_back(std::move(w));
  }
  std::ostringstream os;
  std::vector<std::string> cols;
  for (const trace_event& w : windows) {
    if (cols.empty()) {
      for (const auto& [k, v] : w.num) {
        (void)v;
        if (k != "t0" && k != "t1") cols.push_back(k);
      }
      os << "t0        t1      ";
      for (const auto& c : cols) {
        char h[64];
        std::snprintf(h, sizeof h, "  %14s", c.c_str());
        os << h;
      }
      os << "\n";
    }
    char buf[64];
    std::snprintf(buf, sizeof buf, "%-9.1f %-9.1f", w.get("t0"), w.get("t1"));
    os << buf;
    for (const auto& c : cols) {
      std::snprintf(buf, sizeof buf, "  %14.6g", w.get(c));
      os << buf;
    }
    os << "\n";
  }
  return os.str();
}

std::string render_summary(const analysis& a) {
  std::ostringstream os;
  char buf[256];
  os << "event counts:\n";
  for (const auto& [ev, n] : a.event_counts) {
    std::snprintf(buf, sizeof buf, "  %-8s %llu\n", ev.c_str(),
                  static_cast<unsigned long long>(n));
    os << buf;
  }

  const std::vector<double> ttc = a.ttc_sample();
  std::size_t incomplete = 0, with_holders = 0;
  for (const update_ttc& u : a.updates) {
    if (u.holders > 0) {
      ++with_holders;
      if (!u.complete) ++incomplete;
    }
  }
  std::snprintf(buf, sizeof buf,
                "updates: %zu total, %zu with holders, %zu incomplete at "
                "trace end\n",
                a.updates.size(), with_holders, incomplete);
  os << buf;
  std::snprintf(buf, sizeof buf,
                "time-to-consistency (s): n=%zu p50=%.3f p90=%.3f p99=%.3f "
                "max=%.3f\n",
                ttc.size(), quantile(ttc, 0.50), quantile(ttc, 0.90),
                quantile(ttc, 0.99), quantile(ttc, 1.0));
  os << buf;

  const std::vector<double> lat = a.latency_sample();
  std::uint64_t disc = 0, poll = 0, xfer = 0;
  std::size_t answered = 0, stale = 0;
  for (const query_latency& q : a.queries) {
    if (!q.answered) continue;
    ++answered;
    if (q.stale) ++stale;
    disc += q.discovery_frames;
    poll += q.poll_frames;
    xfer += q.transfer_frames;
  }
  std::snprintf(buf, sizeof buf,
                "queries: %zu traced, %zu answered, %zu stale\n",
                a.queries.size(), answered, stale);
  os << buf;
  std::snprintf(buf, sizeof buf,
                "query latency (s): n=%zu p50=%.3f p95=%.3f max=%.3f\n",
                lat.size(), quantile(lat, 0.50), quantile(lat, 0.95),
                quantile(lat, 1.0));
  os << buf;
  const double k = answered > 0 ? static_cast<double>(answered) : 1.0;
  std::snprintf(buf, sizeof buf,
                "per-answered-query frames: discovery=%.2f poll=%.2f "
                "transfer=%.2f\n",
                static_cast<double>(disc) / k, static_cast<double>(poll) / k,
                static_cast<double>(xfer) / k);
  os << buf;
  return os.str();
}

bool matrix_trace_metric(const std::string& trace_path,
                         const std::string& metric, double& out) {
  const trace_file tf = load(trace_path);
  if (metric == "trace.events") {
    out = static_cast<double>(tf.events.size());
    return true;
  }
  if (metric == "trace.malformed_lines") {
    out = static_cast<double>(tf.malformed_lines);
    return true;
  }
  if (metric == "trace.causal_violations") {
    out = static_cast<double>(check(tf).size());
    return true;
  }
  const analysis a = analyze(tf);
  if (metric == "trace.ttc_p50_s" || metric == "trace.ttc_p95_s" ||
      metric == "trace.ttc_p99_s") {
    const double q = metric == "trace.ttc_p50_s"   ? 0.50
                     : metric == "trace.ttc_p95_s" ? 0.95
                                                   : 0.99;
    out = quantile(a.ttc_sample(), q);
    return true;
  }
  if (metric == "trace.latency_p50_s" || metric == "trace.latency_p95_s" ||
      metric == "trace.latency_p99_s") {
    const double q = metric == "trace.latency_p50_s"   ? 0.50
                     : metric == "trace.latency_p95_s" ? 0.95
                                                       : 0.99;
    out = quantile(a.latency_sample(), q);
    return true;
  }
  if (metric == "trace.updates_complete") {
    std::size_t with_holders = 0, complete = 0;
    for (const update_ttc& u : a.updates) {
      if (u.holders == 0) continue;
      ++with_holders;
      if (u.complete) ++complete;
    }
    out = with_holders ? static_cast<double>(complete) /
                             static_cast<double>(with_holders)
                       : 1.0;
    return true;
  }
  return false;
}

}  // namespace manet::tracestat
