#include "detlint.hpp"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>

namespace detlint {

namespace {

// ---------------------------------------------------------------------------
// Source sanitizing: blank out comments and string/char literals so the rule
// regexes never fire on prose or on quoted text. Raw lines are kept for
// suppression-comment parsing.
// ---------------------------------------------------------------------------

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::string cur;
  for (char c : text) {
    if (c == '\n') {
      lines.push_back(cur);
      cur.clear();
    } else {
      cur += c;
    }
  }
  if (!cur.empty()) lines.push_back(cur);
  return lines;
}

/// Replaces comment and literal contents with spaces, preserving columns.
std::vector<std::string> sanitize(const std::vector<std::string>& raw) {
  std::vector<std::string> out;
  out.reserve(raw.size());
  bool in_block_comment = false;
  for (const std::string& line : raw) {
    std::string s = line;
    std::size_t i = 0;
    char literal = 0;  // '"' or '\'' when inside one
    while (i < s.size()) {
      if (in_block_comment) {
        if (s[i] == '*' && i + 1 < s.size() && s[i + 1] == '/') {
          s[i] = ' ';
          s[i + 1] = ' ';
          in_block_comment = false;
          i += 2;
        } else {
          s[i++] = ' ';
        }
        continue;
      }
      if (literal != 0) {
        if (s[i] == '\\' && i + 1 < s.size()) {
          s[i] = ' ';
          s[i + 1] = ' ';
          i += 2;
          continue;
        }
        if (s[i] == literal) literal = 0;
        s[i++] = ' ';
        continue;
      }
      if (s[i] == '"' || s[i] == '\'') {
        literal = s[i];
        s[i++] = ' ';
        continue;
      }
      if (s[i] == '/' && i + 1 < s.size() && s[i + 1] == '/') {
        for (std::size_t j = i; j < s.size(); ++j) s[j] = ' ';
        break;
      }
      if (s[i] == '/' && i + 1 < s.size() && s[i + 1] == '*') {
        s[i] = ' ';
        s[i + 1] = ' ';
        in_block_comment = true;
        i += 2;
        continue;
      }
      ++i;
    }
    // Literals do not continue across lines (raw strings are not used here).
    out.push_back(std::move(s));
  }
  return out;
}

// ---------------------------------------------------------------------------
// Suppressions
// ---------------------------------------------------------------------------

struct suppression {
  std::set<std::string> rules;  ///< may contain "*"
  bool has_reason = false;
  bool malformed = false;
};

const std::regex kSuppressionRe(R"(NOLINT(NEXTLINE)?-DET)");
const std::regex kSuppressionFullRe(R"(NOLINT(NEXTLINE)?-DET\(([^)]*)\))");

/// Parses every NOLINT-DET marker on a raw line. Returns (same-line,
/// next-line) suppressions; a marker without parsable "(rules: reason)"
/// content yields a malformed entry so DET000 can flag it.
std::pair<std::vector<suppression>, std::vector<suppression>> parse_suppressions(
    const std::string& raw_line) {
  std::vector<suppression> same;
  std::vector<suppression> next;
  auto begin = std::sregex_iterator(raw_line.begin(), raw_line.end(),
                                    kSuppressionFullRe);
  std::set<std::size_t> parsed_positions;
  for (auto it = begin; it != std::sregex_iterator(); ++it) {
    const std::smatch& m = *it;
    parsed_positions.insert(static_cast<std::size_t>(m.position(0)));
    suppression sup;
    const std::string body = m[2].str();
    const std::size_t colon = body.find(':');
    std::string rules = colon == std::string::npos ? body : body.substr(0, colon);
    std::string reason = colon == std::string::npos ? "" : body.substr(colon + 1);
    std::stringstream ss(rules);
    std::string rule;
    while (std::getline(ss, rule, ',')) {
      const auto b = rule.find_first_not_of(" \t");
      const auto e = rule.find_last_not_of(" \t");
      if (b != std::string::npos) sup.rules.insert(rule.substr(b, e - b + 1));
    }
    sup.has_reason = reason.find_first_not_of(" \t") != std::string::npos;
    if (sup.rules.empty()) sup.malformed = true;
    (m[1].matched ? next : same).push_back(std::move(sup));
  }
  // Bare markers without (…) are malformed suppressions.
  auto bare = std::sregex_iterator(raw_line.begin(), raw_line.end(), kSuppressionRe);
  for (auto it = bare; it != std::sregex_iterator(); ++it) {
    const std::smatch& m = *it;
    if (parsed_positions.count(static_cast<std::size_t>(m.position(0)))) continue;
    suppression sup;
    sup.malformed = true;
    (m[1].matched ? next : same).push_back(std::move(sup));
  }
  return {same, next};
}

bool suppresses(const std::vector<suppression>& sups, const std::string& rule) {
  for (const suppression& s : sups) {
    if (s.malformed || !s.has_reason) continue;
    if (s.rules.count("*") != 0 || s.rules.count(rule) != 0) return true;
  }
  return false;
}

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// All identifiers appearing in `s`.
std::vector<std::string> identifiers(const std::string& s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    if (is_ident_char(s[i]) && std::isdigit(static_cast<unsigned char>(s[i])) == 0) {
      std::size_t j = i;
      while (j < s.size() && is_ident_char(s[j])) ++j;
      out.push_back(s.substr(i, j - i));
      i = j;
    } else {
      ++i;
    }
  }
  return out;
}

/// Index just past the '>' matching the '<' at `open`; npos if unbalanced.
std::size_t match_angle(const std::string& s, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < s.size(); ++i) {
    if (s[i] == '<') ++depth;
    if (s[i] == '>') {
      --depth;
      if (depth == 0) return i + 1;
    }
  }
  return std::string::npos;
}

std::string normalize_path(std::string p) {
  std::replace(p.begin(), p.end(), '\\', '/');
  return p;
}

bool ends_with(const std::string& s, const std::string& suffix) {
  return s.size() >= suffix.size() &&
         s.compare(s.size() - suffix.size(), suffix.size(), suffix) == 0;
}

bool allowed(const std::vector<allow_entry>& allow, const std::string& rule,
             const std::string& path) {
  const std::string norm = normalize_path(path);
  for (const allow_entry& a : allow) {
    if (a.rule == rule && ends_with(norm, a.path_suffix)) return true;
  }
  return false;
}

const std::set<std::string>& cpp_keywords() {
  static const std::set<std::string> kw = {
      "auto",     "const",    "constexpr", "static",  "if",      "else",
      "for",      "while",    "return",    "switch",  "case",    "break",
      "continue", "class",    "struct",    "enum",    "using",   "namespace",
      "template", "typename", "public",    "private", "protected",
      "new",      "delete",   "this",      "sizeof",  "true",    "false",
      "void",     "int",      "double",    "float",   "char",    "bool",
      "unsigned", "signed",   "long",      "short",   "std"};
  return kw;
}

}  // namespace

// ---------------------------------------------------------------------------
// Pass 1: which identifiers name unordered containers?
// ---------------------------------------------------------------------------

std::vector<std::string> collect_unordered_names(
    const std::vector<std::string>& texts) {
  static const std::regex decl_re(R"(\bunordered_(map|set|multimap|multiset)\s*<)");
  static const std::regex alias_re(
      R"(using\s+(\w+)\s*=\s*[^;]*\bunordered_(map|set|multimap|multiset)\b)");
  std::set<std::string> names;
  std::set<std::string> aliases;
  std::vector<std::string> flattened;
  flattened.reserve(texts.size());
  for (const std::string& text : texts) {
    const std::vector<std::string> sane = sanitize(split_lines(text));
    std::string flat;
    for (const std::string& l : sane) {
      flat += l;
      flat += '\n';
    }
    flattened.push_back(std::move(flat));
  }
  for (const std::string& flat : flattened) {
    // Type aliases of unordered containers.
    for (auto it = std::sregex_iterator(flat.begin(), flat.end(), alias_re);
         it != std::sregex_iterator(); ++it) {
      aliases.insert((*it)[1].str());
    }
    // Declarations: the first identifier after the container's template
    // argument list (skipping any enclosing container's closing '>'s) is the
    // declared name — a member, local, parameter, or function returning one.
    for (auto it = std::sregex_iterator(flat.begin(), flat.end(), decl_re);
         it != std::sregex_iterator(); ++it) {
      const std::size_t open = static_cast<std::size_t>(it->position(0)) +
                               it->length(0) - 1;
      std::size_t pos = match_angle(flat, open);
      if (pos == std::string::npos) continue;
      while (pos < flat.size() &&
             (flat[pos] == '>' || flat[pos] == '*' || flat[pos] == '&' ||
              std::isspace(static_cast<unsigned char>(flat[pos])) != 0)) {
        ++pos;
      }
      std::size_t end = pos;
      while (end < flat.size() && is_ident_char(flat[end])) ++end;
      const std::string name = flat.substr(pos, end - pos);
      if (!name.empty() && cpp_keywords().count(name) == 0) names.insert(name);
    }
  }
  // Declarations via a recorded alias: `poll_table polls_;`
  for (const std::string& alias : aliases) {
    const std::regex alias_decl_re("\\b" + alias + R"(\s+(\w+)\s*[;={])");
    for (const std::string& flat : flattened) {
      for (auto it = std::sregex_iterator(flat.begin(), flat.end(), alias_decl_re);
           it != std::sregex_iterator(); ++it) {
        names.insert((*it)[1].str());
      }
    }
  }
  return {names.begin(), names.end()};
}

// ---------------------------------------------------------------------------
// Pass 2: per-file rules
// ---------------------------------------------------------------------------

std::vector<finding> scan_text(const std::string& path, const std::string& text,
                               const std::vector<std::string>& unordered_names,
                               const std::vector<allow_entry>& allow) {
  const std::vector<std::string> raw = split_lines(text);
  const std::vector<std::string> code = sanitize(raw);
  const std::set<std::string> names(unordered_names.begin(), unordered_names.end());

  // Suppressions per line: same-line plus NOLINTNEXTLINE-DET from line-1.
  std::vector<std::vector<suppression>> active(raw.size());
  std::vector<finding> out;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    auto [same, next] = parse_suppressions(raw[i]);
    for (const suppression& s : same) {
      if (s.malformed) {
        out.push_back({path, static_cast<int>(i) + 1, "DET000",
                       "malformed NOLINT-DET suppression: expected "
                       "NOLINT-DET(RULE[,RULE]: reason)"});
      } else if (!s.has_reason) {
        out.push_back({path, static_cast<int>(i) + 1, "DET000",
                       "NOLINT-DET suppression is missing a reason"});
      }
    }
    for (const suppression& s : next) {
      if (s.malformed) {
        out.push_back({path, static_cast<int>(i) + 1, "DET000",
                       "malformed NOLINTNEXTLINE-DET suppression: expected "
                       "NOLINTNEXTLINE-DET(RULE[,RULE]: reason)"});
      } else if (!s.has_reason) {
        out.push_back({path, static_cast<int>(i) + 1, "DET000",
                       "NOLINTNEXTLINE-DET suppression is missing a reason"});
      }
    }
    active[i].insert(active[i].end(), same.begin(), same.end());
    if (!next.empty() && i + 1 < raw.size()) {
      active[i + 1].insert(active[i + 1].end(), next.begin(), next.end());
    }
  }

  auto report = [&](std::size_t line_idx, const std::string& rule,
                    const std::string& message) {
    if (allowed(allow, rule, path)) return;
    if (line_idx < active.size() && suppresses(active[line_idx], rule)) return;
    out.push_back({path, static_cast<int>(line_idx) + 1, rule, message});
  };

  // --- DET001: iteration over unordered containers -------------------------
  static const std::regex for_re(R"(\bfor\s*\()");
  static const std::regex begin_re(R"(([A-Za-z_]\w*)\s*(?:\.|->)\s*c?begin\s*\()");
  for (std::size_t i = 0; i < code.size(); ++i) {
    // Range-for: join the statement across up to 4 lines, find the top-level
    // ':' inside the for parens, and inspect the range expression.
    for (auto it = std::sregex_iterator(code[i].begin(), code[i].end(), for_re);
         it != std::sregex_iterator(); ++it) {
      std::string stmt = code[i].substr(static_cast<std::size_t>(it->position(0)));
      std::size_t extra = 0;
      auto paren_depth = [](const std::string& s) {
        int d = 0;
        for (char c : s) {
          if (c == '(') ++d;
          if (c == ')') --d;
        }
        return d;
      };
      while (paren_depth(stmt) > 0 && extra < 4 && i + extra + 1 < code.size()) {
        ++extra;
        stmt += ' ';
        stmt += code[i + extra];
      }
      // Locate the ':' at depth 1 (skip '::').
      int depth = 0;
      std::size_t colon = std::string::npos;
      for (std::size_t k = 0; k < stmt.size(); ++k) {
        if (stmt[k] == '(') ++depth;
        if (stmt[k] == ')') {
          --depth;
          if (depth == 0) break;
        }
        if (stmt[k] == ':' && depth == 1) {
          if ((k + 1 < stmt.size() && stmt[k + 1] == ':') ||
              (k > 0 && stmt[k - 1] == ':')) {
            continue;
          }
          colon = k;
          break;
        }
      }
      if (colon == std::string::npos) continue;
      // Range expression: from the colon to the for-statement's close paren.
      depth = 1;
      std::size_t end = stmt.size();
      for (std::size_t k = colon; k < stmt.size(); ++k) {
        if (stmt[k] == '(') ++depth;
        if (stmt[k] == ')') {
          --depth;
          if (depth == 0) {
            end = k;
            break;
          }
        }
      }
      std::string range_expr = stmt.substr(colon + 1, end - colon - 1);
      // Identifiers inside parentheses are call arguments — e.g. the
      // sanctioned `for (auto k : sorted_keys(m))` extraction — where
      // ordering is the callee's concern, so only top-level identifiers
      // count. Member access like `m.at(i)` keeps `m` at the top level.
      int arg_depth = 0;
      for (char& c : range_expr) {
        if (c == '(') {
          ++arg_depth;
          c = ' ';
        } else if (c == ')') {
          --arg_depth;
          c = ' ';
        } else if (arg_depth > 0) {
          c = ' ';
        }
      }
      for (const std::string& id : identifiers(range_expr)) {
        if (names.count(id) != 0) {
          report(i, "DET001",
                 "range-for over unordered container '" + id +
                     "': iteration order is unspecified — extract and sort "
                     "the keys, use std::map, or suppress with NOLINT-DET");
          break;
        }
      }
    }
    // Iterator loops: any .begin()/cbegin() on an unordered name.
    for (auto it = std::sregex_iterator(code[i].begin(), code[i].end(), begin_re);
         it != std::sregex_iterator(); ++it) {
      const std::string id = (*it)[1].str();
      if (names.count(id) != 0) {
        report(i, "DET001",
               "iterator over unordered container '" + id +
                   "': iteration order is unspecified — extract and sort the "
                   "keys, use std::map, or suppress with NOLINT-DET");
      }
    }
  }

  // --- DET002: ambient nondeterminism sources ------------------------------
  static const std::vector<std::pair<std::regex, std::string>> det2 = {
      {std::regex(R"(\brand\s*\()"), "rand()"},
      {std::regex(R"(\bsrand\s*\()"), "srand()"},
      {std::regex(R"(\brandom_device\b)"), "std::random_device"},
      {std::regex(R"(\bsystem_clock\b)"), "std::chrono::system_clock"},
      {std::regex(R"(\bsteady_clock\b)"), "std::chrono::steady_clock"},
      {std::regex(R"(\bhigh_resolution_clock\b)"),
       "std::chrono::high_resolution_clock"},
      {std::regex(R"(\btime\s*\(\s*(NULL|nullptr|0)?\s*\))"), "time()"},
      {std::regex(R"(\bclock\s*\(\s*\))"), "clock()"},
      {std::regex(R"(\bgettimeofday\b)"), "gettimeofday()"},
      {std::regex(R"(\bgetrandom\b)"), "getrandom()"},
      {std::regex(R"(\bdefault_random_engine\b)"), "std::default_random_engine"},
      {std::regex(R"(\bmt19937(_64)?\s+\w+\s*;)"),
       "default-seeded std::mt19937"},
      {std::regex(R"(\bmt19937(_64)?\s*(\(\s*\)|\{\s*\}))"),
       "default-seeded std::mt19937"},
  };
  for (std::size_t i = 0; i < code.size(); ++i) {
    for (const auto& [re, what] : det2) {
      if (std::regex_search(code[i], re)) {
        report(i, "DET002",
               what + " is a nondeterministic source — draw from a named "
                      "util/rng stream instead");
      }
    }
  }

  // --- DET003: pointer keys / address hashing ------------------------------
  static const std::vector<std::pair<std::regex, std::string>> det3 = {
      {std::regex(R"(\bunordered_(map|set|multimap|multiset)\s*<\s*[\w:\s]+\*)"),
       "pointer-keyed unordered container"},
      {std::regex(R"(\b(multi)?(map|set)\s*<\s*[\w:\s]+\*)"),
       "pointer-keyed ordered container"},
      {std::regex(R"(\bhash\s*<\s*[\w:\s]+\*\s*>)"), "std::hash over a pointer"},
      {std::regex(R"(\bless\s*<\s*[\w:\s]+\*\s*>)"), "std::less over a pointer"},
      {std::regex(R"(reinterpret_cast\s*<\s*(std\s*::\s*)?u?intptr_t)"),
       "address-derived integer"},
  };
  for (std::size_t i = 0; i < code.size(); ++i) {
    for (const auto& [re, what] : det3) {
      if (std::regex_search(code[i], re)) {
        report(i, "DET003",
               what + ": addresses vary run to run under ASLR, so any "
                      "ordering or hashing derived from them is "
                      "nondeterministic — key by a stable id");
      }
    }
  }

  // --- DET004: mutable statics / globals -----------------------------------
  static const std::regex static_re(R"(^\s*static\s)");
  static const std::regex global_re(
      R"(^[A-Za-z_][\w:<>,\s*&]*\s[A-Za-z_]\w*\s*=[^=].*;)");
  static const std::set<std::string> decl_starters = {
      "return", "using",  "typedef", "template", "namespace", "struct",
      "class",  "enum",   "if",      "for",      "while",     "else",
      "case",   "public", "private", "protected", "friend",   "operator",
      "delete", "throw",  "goto",    "do",        "extern"};
  for (std::size_t i = 0; i < code.size(); ++i) {
    const std::string& l = code[i];
    const bool is_static = std::regex_search(l, static_re);
    const bool is_global_candidate =
        !is_static && std::regex_search(l, global_re) && l[0] != ' ';
    if (!is_static && !is_global_candidate) continue;
    if (l.find("static_cast") != std::string::npos ||
        l.find("static_assert") != std::string::npos) {
      continue;
    }
    if (l.find("constexpr") != std::string::npos ||
        l.find("const ") != std::string::npos ||
        l.find("const&") != std::string::npos ||
        l.find("atomic") != std::string::npos) {
      continue;
    }
    const std::vector<std::string> ids = identifiers(l);
    if (!ids.empty() && decl_starters.count(ids.front()) != 0) continue;
    if (is_static && !ids.empty() && ids.front() != "static") continue;
    // A '(' before any '=' means a function declaration/definition.
    const std::size_t eq = l.find('=');
    const std::string head = eq == std::string::npos ? l : l.substr(0, eq);
    if (head.find('(') != std::string::npos) continue;
    // Plain `static foo;` without initializer only counts when static.
    if (!is_static && eq == std::string::npos) continue;
    if (is_static && eq == std::string::npos &&
        head.find(';') == std::string::npos) {
      continue;  // e.g. `static class foo` spanning lines — out of scope
    }
    report(i, "DET004",
           std::string(is_static ? "mutable non-atomic static" : "mutable global") +
               " variable: hidden cross-run/cross-thread state breaks "
               "twice-run reproducibility — make it const, atomic, or "
               "per-instance state");
  }

  // --- DET005: unordered parallel float reduction --------------------------
  static const std::vector<std::pair<std::regex, std::string>> det5 = {
      {std::regex(R"(\bstd\s*::\s*execution\s*::)"),
       "parallel execution policy"},
      {std::regex(R"(#\s*pragma\s+omp)"), "OpenMP pragma"},
      {std::regex(R"(\batomic\s*<\s*(float|double|long\s+double))"),
       "atomic floating-point accumulator"},
      {std::regex(R"(\b(std\s*::\s*)?(reduce|transform_reduce)\s*\()"),
       "std::reduce/transform_reduce"},
  };
  for (std::size_t i = 0; i < code.size(); ++i) {
    for (const auto& [re, what] : det5) {
      if (std::regex_search(code[i], re)) {
        report(i, "DET005",
               what + ": floating-point addition is not associative, so "
                      "unordered parallel reduction is run-to-run "
                      "nondeterministic — merge worker results in submission "
                      "order (see scenario/sweep.cpp)");
      }
    }
  }

  // --- DET006: raw pointers to pooled kernel event records -----------------
  // The event kernel stores event records in a recycled slab pool
  // (sim/event_queue's slot_meta + action slots), so a raw pointer to a
  // pooled record is neither a stable identity (the slot is reused after
  // release) nor deterministic (its address varies run to run under ASLR).
  // Event identity must travel as the {slot index, generation} pair carried
  // by event_handle. Legacy record spellings are matched so the rule keeps
  // firing if the type is renamed back.
  static const std::regex det6(
      R"(\b(slot_meta|event_slot|event_record|event_action)\s*\*)");
  for (std::size_t i = 0; i < code.size(); ++i) {
    std::smatch m;
    if (std::regex_search(code[i], m, det6)) {
      report(i, "DET006",
             "raw pointer to pooled kernel record '" + m[1].str() +
                 "': pool slots are recycled and their addresses vary under "
                 "ASLR, so pointer identity/ordering over them is "
                 "nondeterministic — hold an event_handle {slot, generation} "
                 "instead");
    }
  }

  // --- DET007: chaos/fuzz code must draw from named RNG streams ------------
  // Fault plans and fuzz sweeps are replayed from (scenario, chaos_seed)
  // alone, so any generator in chaos/fuzz scope that is not derived from a
  // named stream (derive_seed / make_rng) silently breaks seed-replay: a
  // std engine or an ad-hoc literal-seeded manet::rng reproduces until
  // someone reorders the calls, then every archived repro goes stale.
  {
    const std::string norm = normalize_path(path);
    const bool chaos_scope = norm.find("chaos") != std::string::npos ||
                             norm.find("fuzz") != std::string::npos;
    static const std::regex det7_engine(
        R"(\b(mt19937(_64)?|minstd_rand0?|ranlux(24|48)(_base)?|knuth_b|default_random_engine)\b)");
    static const std::regex det7_adhoc_rng(R"(\brng\s+\w+\s*[({]\s*\d)");
    for (std::size_t i = 0; chaos_scope && i < code.size(); ++i) {
      std::smatch m;
      if (std::regex_search(code[i], m, det7_engine)) {
        report(i, "DET007",
               "std engine '" + m[1].str() +
                   "' in chaos/fuzz code: chaos runs must be replayable from "
                   "(scenario, chaos_seed) alone — draw from a named stream "
                   "via derive_seed()/make_rng() instead");
      } else if (std::regex_search(code[i], det7_adhoc_rng) &&
                 code[i].find("derive_seed") == std::string::npos &&
                 code[i].find("make_rng") == std::string::npos) {
        report(i, "DET007",
               "ad-hoc literal-seeded rng in chaos/fuzz code: seed it from a "
               "named stream via derive_seed()/make_rng() so the run is "
               "replayable from (scenario, chaos_seed)");
      }
    }
  }

  std::stable_sort(out.begin(), out.end(),
                   [](const finding& a, const finding& b) { return a.line < b.line; });
  return out;
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

std::vector<allow_entry> default_allowlist() {
  return {
      {"DET002", "src/util/rng.cpp"},
      {"DET002", "src/util/rng.hpp"},
      // Host-side wall-clock profiling: the only sim-tree file allowed to
      // read a clock. Results are reported out-of-band, never fed back into
      // the simulation (see obs/prof.hpp).
      {"DET002", "src/obs/prof.cpp"},
      {"DET005", "src/scenario/sweep.cpp"},
  };
}

std::vector<std::string> collect_files(const std::vector<std::string>& roots) {
  namespace fs = std::filesystem;
  const std::set<std::string> exts = {".cpp", ".cc", ".cxx", ".hpp", ".hh", ".h"};
  std::vector<std::string> files;
  for (const std::string& root : roots) {
    if (fs::is_directory(root)) {
      for (const auto& entry : fs::recursive_directory_iterator(root)) {
        if (!entry.is_regular_file()) continue;
        if (exts.count(entry.path().extension().string()) != 0) {
          files.push_back(entry.path().string());
        }
      }
    } else if (fs::is_regular_file(root)) {
      files.push_back(root);
    }
  }
  std::sort(files.begin(), files.end());
  files.erase(std::unique(files.begin(), files.end()), files.end());
  return files;
}

std::vector<finding> scan(const options& opts) {
  const std::vector<std::string> files = collect_files(opts.roots);
  std::vector<std::string> texts;
  texts.reserve(files.size());
  for (const std::string& f : files) {
    std::ifstream in(f);
    std::stringstream ss;
    ss << in.rdbuf();
    texts.push_back(ss.str());
  }
  const std::vector<std::string> names = collect_unordered_names(texts);
  std::vector<finding> out;
  for (std::size_t i = 0; i < files.size(); ++i) {
    std::vector<finding> fs = scan_text(files[i], texts[i], names, opts.allow);
    out.insert(out.end(), fs.begin(), fs.end());
  }
  return out;
}

std::string format(const finding& f) {
  return f.file + ":" + std::to_string(f.line) + ": " + f.rule + ": " + f.message;
}

}  // namespace detlint
