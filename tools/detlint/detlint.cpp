#include "detlint.hpp"

#include <algorithm>
#include <cctype>
#include <regex>
#include <set>

#include "lexer.hpp"     // lint_core: token-aware source view
#include "suppress.hpp"  // lint_core: NOLINT machinery

namespace detlint {

namespace {

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) != 0 || c == '_';
}

/// All identifiers appearing in `s`.
std::vector<std::string> identifiers(const std::string& s) {
  std::vector<std::string> out;
  std::size_t i = 0;
  while (i < s.size()) {
    if (is_ident_char(s[i]) && std::isdigit(static_cast<unsigned char>(s[i])) == 0) {
      std::size_t j = i;
      while (j < s.size() && is_ident_char(s[j])) ++j;
      out.push_back(s.substr(i, j - i));
      i = j;
    } else {
      ++i;
    }
  }
  return out;
}

/// Index just past the '>' matching the '<' at `open`; npos if unbalanced.
std::size_t match_angle(const std::string& s, std::size_t open) {
  int depth = 0;
  for (std::size_t i = open; i < s.size(); ++i) {
    if (s[i] == '<') ++depth;
    if (s[i] == '>') {
      --depth;
      if (depth == 0) return i + 1;
    }
  }
  return std::string::npos;
}

const std::set<std::string>& cpp_keywords() {
  static const std::set<std::string> kw = {
      "auto",     "const",    "constexpr", "static",  "if",      "else",
      "for",      "while",    "return",    "switch",  "case",    "break",
      "continue", "class",    "struct",    "enum",    "using",   "namespace",
      "template", "typename", "public",    "private", "protected",
      "new",      "delete",   "this",      "sizeof",  "true",    "false",
      "void",     "int",      "double",    "float",   "char",    "bool",
      "unsigned", "signed",   "long",      "short",   "std"};
  return kw;
}

}  // namespace

// ---------------------------------------------------------------------------
// Pass 1: which identifiers name unordered containers?
// ---------------------------------------------------------------------------

std::vector<std::string> collect_unordered_names(
    const std::vector<std::string>& texts) {
  static const std::regex decl_re(R"(\bunordered_(map|set|multimap|multiset)\s*<)");
  static const std::regex alias_re(
      R"(using\s+(\w+)\s*=\s*[^;]*\bunordered_(map|set|multimap|multiset)\b)");
  std::set<std::string> names;
  std::set<std::string> aliases;
  std::vector<std::string> flattened;
  flattened.reserve(texts.size());
  for (const std::string& text : texts) {
    flattened.push_back(lint_core::code_text(lint_core::lex(text)));
  }
  for (const std::string& flat : flattened) {
    // Type aliases of unordered containers.
    for (auto it = std::sregex_iterator(flat.begin(), flat.end(), alias_re);
         it != std::sregex_iterator(); ++it) {
      aliases.insert((*it)[1].str());
    }
    // Declarations: the first identifier after the container's template
    // argument list (skipping any enclosing container's closing '>'s) is the
    // declared name — a member, local, parameter, or function returning one.
    for (auto it = std::sregex_iterator(flat.begin(), flat.end(), decl_re);
         it != std::sregex_iterator(); ++it) {
      const std::size_t open = static_cast<std::size_t>(it->position(0)) +
                               it->length(0) - 1;
      std::size_t pos = match_angle(flat, open);
      if (pos == std::string::npos) continue;
      while (pos < flat.size() &&
             (flat[pos] == '>' || flat[pos] == '*' || flat[pos] == '&' ||
              std::isspace(static_cast<unsigned char>(flat[pos])) != 0)) {
        ++pos;
      }
      std::size_t end = pos;
      while (end < flat.size() && is_ident_char(flat[end])) ++end;
      const std::string name = flat.substr(pos, end - pos);
      if (!name.empty() && cpp_keywords().count(name) == 0) names.insert(name);
    }
  }
  // Declarations via a recorded alias: `poll_table polls_;`
  for (const std::string& alias : aliases) {
    const std::regex alias_decl_re("\\b" + alias + R"(\s+(\w+)\s*[;={])");
    for (const std::string& flat : flattened) {
      for (auto it = std::sregex_iterator(flat.begin(), flat.end(), alias_decl_re);
           it != std::sregex_iterator(); ++it) {
        names.insert((*it)[1].str());
      }
    }
  }
  return {names.begin(), names.end()};
}

// ---------------------------------------------------------------------------
// Pass 2: per-file rules
// ---------------------------------------------------------------------------

std::vector<finding> scan_text(const std::string& path, const std::string& text,
                               const std::vector<std::string>& unordered_names,
                               const std::vector<allow_entry>& allow) {
  const lint_core::source_view view = lint_core::lex(text);
  const std::vector<std::string>& raw = view.raw;
  const std::vector<std::string>& code = view.code;
  const std::set<std::string> names(unordered_names.begin(), unordered_names.end());

  // Suppressions per line: same-line plus NOLINTNEXTLINE-DET from line-1.
  std::vector<finding> out;
  const auto active = lint_core::suppression_table(
      raw, "DET", [&](std::size_t line_idx, const std::string& message) {
        out.push_back({path, static_cast<int>(line_idx) + 1, "DET000", message});
      });

  auto report = [&](std::size_t line_idx, const std::string& rule,
                    const std::string& message) {
    if (lint_core::allowed(allow, rule, path)) return;
    if (line_idx < active.size() &&
        lint_core::suppresses(active[line_idx], rule)) {
      return;
    }
    out.push_back({path, static_cast<int>(line_idx) + 1, rule, message});
  };

  // --- DET001: iteration over unordered containers -------------------------
  static const std::regex for_re(R"(\bfor\s*\()");
  static const std::regex begin_re(R"(([A-Za-z_]\w*)\s*(?:\.|->)\s*c?begin\s*\()");
  for (std::size_t i = 0; i < code.size(); ++i) {
    // Range-for: join the statement across up to 4 lines, find the top-level
    // ':' inside the for parens, and inspect the range expression.
    for (auto it = std::sregex_iterator(code[i].begin(), code[i].end(), for_re);
         it != std::sregex_iterator(); ++it) {
      std::string stmt = code[i].substr(static_cast<std::size_t>(it->position(0)));
      std::size_t extra = 0;
      auto paren_depth = [](const std::string& s) {
        int d = 0;
        for (char c : s) {
          if (c == '(') ++d;
          if (c == ')') --d;
        }
        return d;
      };
      while (paren_depth(stmt) > 0 && extra < 4 && i + extra + 1 < code.size()) {
        ++extra;
        stmt += ' ';
        stmt += code[i + extra];
      }
      // Locate the ':' at depth 1 (skip '::').
      int depth = 0;
      std::size_t colon = std::string::npos;
      for (std::size_t k = 0; k < stmt.size(); ++k) {
        if (stmt[k] == '(') ++depth;
        if (stmt[k] == ')') {
          --depth;
          if (depth == 0) break;
        }
        if (stmt[k] == ':' && depth == 1) {
          if ((k + 1 < stmt.size() && stmt[k + 1] == ':') ||
              (k > 0 && stmt[k - 1] == ':')) {
            continue;
          }
          colon = k;
          break;
        }
      }
      if (colon == std::string::npos) continue;
      // Range expression: from the colon to the for-statement's close paren.
      depth = 1;
      std::size_t end = stmt.size();
      for (std::size_t k = colon; k < stmt.size(); ++k) {
        if (stmt[k] == '(') ++depth;
        if (stmt[k] == ')') {
          --depth;
          if (depth == 0) {
            end = k;
            break;
          }
        }
      }
      std::string range_expr = stmt.substr(colon + 1, end - colon - 1);
      // Identifiers inside parentheses are call arguments — e.g. the
      // sanctioned `for (auto k : sorted_keys(m))` extraction — where
      // ordering is the callee's concern, so only top-level identifiers
      // count. Member access like `m.at(i)` keeps `m` at the top level.
      int arg_depth = 0;
      for (char& c : range_expr) {
        if (c == '(') {
          ++arg_depth;
          c = ' ';
        } else if (c == ')') {
          --arg_depth;
          c = ' ';
        } else if (arg_depth > 0) {
          c = ' ';
        }
      }
      for (const std::string& id : identifiers(range_expr)) {
        if (names.count(id) != 0) {
          report(i, "DET001",
                 "range-for over unordered container '" + id +
                     "': iteration order is unspecified — extract and sort "
                     "the keys, use std::map, or suppress with NOLINT-DET");
          break;
        }
      }
    }
    // Iterator loops: any .begin()/cbegin() on an unordered name.
    for (auto it = std::sregex_iterator(code[i].begin(), code[i].end(), begin_re);
         it != std::sregex_iterator(); ++it) {
      const std::string id = (*it)[1].str();
      if (names.count(id) != 0) {
        report(i, "DET001",
               "iterator over unordered container '" + id +
                   "': iteration order is unspecified — extract and sort the "
                   "keys, use std::map, or suppress with NOLINT-DET");
      }
    }
  }

  // --- DET002: ambient nondeterminism sources ------------------------------
  static const std::vector<std::pair<std::regex, std::string>> det2 = {
      {std::regex(R"(\brand\s*\()"), "rand()"},
      {std::regex(R"(\bsrand\s*\()"), "srand()"},
      {std::regex(R"(\brandom_device\b)"), "std::random_device"},
      {std::regex(R"(\bsystem_clock\b)"), "std::chrono::system_clock"},
      {std::regex(R"(\bsteady_clock\b)"), "std::chrono::steady_clock"},
      {std::regex(R"(\bhigh_resolution_clock\b)"),
       "std::chrono::high_resolution_clock"},
      {std::regex(R"(\btime\s*\(\s*(NULL|nullptr|0)?\s*\))"), "time()"},
      {std::regex(R"(\bclock\s*\(\s*\))"), "clock()"},
      {std::regex(R"(\bgettimeofday\b)"), "gettimeofday()"},
      {std::regex(R"(\bgetrandom\b)"), "getrandom()"},
      {std::regex(R"(\bdefault_random_engine\b)"), "std::default_random_engine"},
      {std::regex(R"(\bmt19937(_64)?\s+\w+\s*;)"),
       "default-seeded std::mt19937"},
      {std::regex(R"(\bmt19937(_64)?\s*(\(\s*\)|\{\s*\}))"),
       "default-seeded std::mt19937"},
  };
  for (std::size_t i = 0; i < code.size(); ++i) {
    for (const auto& [re, what] : det2) {
      if (std::regex_search(code[i], re)) {
        report(i, "DET002",
               what + " is a nondeterministic source — draw from a named "
                      "util/rng stream instead");
      }
    }
  }

  // --- DET003: pointer keys / address hashing ------------------------------
  static const std::vector<std::pair<std::regex, std::string>> det3 = {
      {std::regex(R"(\bunordered_(map|set|multimap|multiset)\s*<\s*[\w:\s]+\*)"),
       "pointer-keyed unordered container"},
      {std::regex(R"(\b(multi)?(map|set)\s*<\s*[\w:\s]+\*)"),
       "pointer-keyed ordered container"},
      {std::regex(R"(\bhash\s*<\s*[\w:\s]+\*\s*>)"), "std::hash over a pointer"},
      {std::regex(R"(\bless\s*<\s*[\w:\s]+\*\s*>)"), "std::less over a pointer"},
      {std::regex(R"(reinterpret_cast\s*<\s*(std\s*::\s*)?u?intptr_t)"),
       "address-derived integer"},
  };
  for (std::size_t i = 0; i < code.size(); ++i) {
    for (const auto& [re, what] : det3) {
      if (std::regex_search(code[i], re)) {
        report(i, "DET003",
               what + ": addresses vary run to run under ASLR, so any "
                      "ordering or hashing derived from them is "
                      "nondeterministic — key by a stable id");
      }
    }
  }

  // --- DET004: mutable statics / globals -----------------------------------
  static const std::regex static_re(R"(^\s*static\s)");
  static const std::regex global_re(
      R"(^[A-Za-z_][\w:<>,\s*&]*\s[A-Za-z_]\w*\s*=[^=].*;)");
  static const std::set<std::string> decl_starters = {
      "return", "using",  "typedef", "template", "namespace", "struct",
      "class",  "enum",   "if",      "for",      "while",     "else",
      "case",   "public", "private", "protected", "friend",   "operator",
      "delete", "throw",  "goto",    "do",        "extern"};
  for (std::size_t i = 0; i < code.size(); ++i) {
    const std::string& l = code[i];
    const bool is_static = std::regex_search(l, static_re);
    const bool is_global_candidate =
        !is_static && std::regex_search(l, global_re) && l[0] != ' ';
    if (!is_static && !is_global_candidate) continue;
    if (l.find("static_cast") != std::string::npos ||
        l.find("static_assert") != std::string::npos) {
      continue;
    }
    if (l.find("constexpr") != std::string::npos ||
        l.find("const ") != std::string::npos ||
        l.find("const&") != std::string::npos ||
        l.find("atomic") != std::string::npos) {
      continue;
    }
    const std::vector<std::string> ids = identifiers(l);
    if (!ids.empty() && decl_starters.count(ids.front()) != 0) continue;
    if (is_static && !ids.empty() && ids.front() != "static") continue;
    // A '(' before any '=' means a function declaration/definition.
    const std::size_t eq = l.find('=');
    const std::string head = eq == std::string::npos ? l : l.substr(0, eq);
    if (head.find('(') != std::string::npos) continue;
    // Plain `static foo;` without initializer only counts when static.
    if (!is_static && eq == std::string::npos) continue;
    if (is_static && eq == std::string::npos &&
        head.find(';') == std::string::npos) {
      continue;  // e.g. `static class foo` spanning lines — out of scope
    }
    report(i, "DET004",
           std::string(is_static ? "mutable non-atomic static" : "mutable global") +
               " variable: hidden cross-run/cross-thread state breaks "
               "twice-run reproducibility — make it const, atomic, or "
               "per-instance state");
  }

  // --- DET005: unordered parallel float reduction --------------------------
  static const std::vector<std::pair<std::regex, std::string>> det5 = {
      {std::regex(R"(\bstd\s*::\s*execution\s*::)"),
       "parallel execution policy"},
      {std::regex(R"(#\s*pragma\s+omp)"), "OpenMP pragma"},
      {std::regex(R"(\batomic\s*<\s*(float|double|long\s+double))"),
       "atomic floating-point accumulator"},
      {std::regex(R"(\b(std\s*::\s*)?(reduce|transform_reduce)\s*\()"),
       "std::reduce/transform_reduce"},
  };
  for (std::size_t i = 0; i < code.size(); ++i) {
    for (const auto& [re, what] : det5) {
      if (std::regex_search(code[i], re)) {
        report(i, "DET005",
               what + ": floating-point addition is not associative, so "
                      "unordered parallel reduction is run-to-run "
                      "nondeterministic — merge worker results in submission "
                      "order (see scenario/sweep.cpp)");
      }
    }
  }

  // --- DET006: raw pointers to pooled slab records --------------------------
  // The event kernel stores event records in a recycled slab pool
  // (sim/event_queue's slot_meta + action slots), and the packet layer pools
  // payload slots the same way (net/packet_pool's payload_slot), so a raw
  // pointer to a pooled record is neither a stable identity (the slot is
  // reused after release) nor deterministic (its address varies run to run
  // under ASLR). Identity must travel as the {slot index, generation} pair
  // carried by event_handle / payload_ptr. Legacy record spellings are
  // matched so the rule keeps firing if a type is renamed back.
  static const std::regex det6(
      R"(\b(slot_meta|event_slot|event_record|event_action|payload_slot)\s*\*)");
  for (std::size_t i = 0; i < code.size(); ++i) {
    std::smatch m;
    if (std::regex_search(code[i], m, det6)) {
      report(i, "DET006",
             "raw pointer to pooled slab record '" + m[1].str() +
                 "': pool slots are recycled and their addresses vary under "
                 "ASLR, so pointer identity/ordering over them is "
                 "nondeterministic — hold a generation-checked handle "
                 "(event_handle / payload_ptr) instead");
    }
  }

  // --- DET007: chaos/fuzz code must draw from named RNG streams ------------
  // Fault plans and fuzz sweeps are replayed from (scenario, chaos_seed)
  // alone, so any generator in chaos/fuzz scope that is not derived from a
  // named stream (derive_seed / make_rng) silently breaks seed-replay: a
  // std engine or an ad-hoc literal-seeded manet::rng reproduces until
  // someone reorders the calls, then every archived repro goes stale.
  {
    const std::string norm = lint_core::normalize_path(path);
    const bool chaos_scope = norm.find("chaos") != std::string::npos ||
                             norm.find("fuzz") != std::string::npos;
    static const std::regex det7_engine(
        R"(\b(mt19937(_64)?|minstd_rand0?|ranlux(24|48)(_base)?|knuth_b|default_random_engine)\b)");
    static const std::regex det7_adhoc_rng(R"(\brng\s+\w+\s*[({]\s*\d)");
    for (std::size_t i = 0; chaos_scope && i < code.size(); ++i) {
      std::smatch m;
      if (std::regex_search(code[i], m, det7_engine)) {
        report(i, "DET007",
               "std engine '" + m[1].str() +
                   "' in chaos/fuzz code: chaos runs must be replayable from "
                   "(scenario, chaos_seed) alone — draw from a named stream "
                   "via derive_seed()/make_rng() instead");
      } else if (std::regex_search(code[i], det7_adhoc_rng) &&
                 code[i].find("derive_seed") == std::string::npos &&
                 code[i].find("make_rng") == std::string::npos) {
        report(i, "DET007",
               "ad-hoc literal-seeded rng in chaos/fuzz code: seed it from a "
               "named stream via derive_seed()/make_rng() so the run is "
               "replayable from (scenario, chaos_seed)");
      }
    }
  }

  std::stable_sort(out.begin(), out.end(),
                   [](const finding& a, const finding& b) { return a.line < b.line; });
  return out;
}

// ---------------------------------------------------------------------------
// Driver
// ---------------------------------------------------------------------------

std::vector<allow_entry> default_allowlist() {
  return {
      {"DET002", "src/util/rng.cpp"},
      {"DET002", "src/util/rng.hpp"},
      {"DET005", "src/scenario/sweep.cpp"},
  };
}

std::vector<std::string> collect_files(const std::vector<std::string>& roots) {
  return lint_core::collect_files(roots);
}

std::vector<finding> scan(const options& opts) {
  const std::vector<std::string> files = collect_files(opts.roots);
  std::vector<std::string> texts;
  texts.reserve(files.size());
  for (const std::string& f : files) {
    texts.push_back(lint_core::read_file(f));
  }
  const std::vector<std::string> names = collect_unordered_names(texts);
  std::vector<finding> out;
  for (std::size_t i = 0; i < files.size(); ++i) {
    std::vector<finding> fs = scan_text(files[i], texts[i], names, opts.allow);
    out.insert(out.end(), fs.begin(), fs.end());
  }
  return out;
}

std::string format(const finding& f) { return lint_core::format(f); }

}  // namespace detlint
