// detlint fixture: one specimen of every rule, at line numbers the unit
// tests pin exactly. Never compiled — only scanned.
#include <map>
#include <unordered_map>
#include <unordered_set>

struct widget {
  int weight = 0;
};

std::unordered_map<int, widget> table_;
std::unordered_set<long> seen_;

int iterate_unordered() {
  int sum = 0;
  for (const auto& [k, v] : table_) {  // line 16: DET001 range-for
    sum += v.weight + k;
  }
  for (auto it = seen_.begin(); it != seen_.end(); ++it) {  // line 19: DET001
    sum += static_cast<int>(*it);
  }
  return sum;
}

int ambient_entropy() {
  int x = rand();  // line 26: DET002
  std::random_device rd;  // line 27: DET002
  auto t = std::chrono::system_clock::now();  // line 28: DET002
  (void)t;
  return x + static_cast<int>(rd());
}

std::map<widget*, int> by_address_;  // line 33: DET003

static int call_counter_ = 0;  // line 35: DET004

double parallel_sum(const std::vector<double>& xs) {
  double out = std::reduce(xs.begin(), xs.end());  // line 38: DET005
  std::atomic<double> acc{0.0};  // line 39: DET005
  return out + acc.load();
}

struct slot_meta;  // stand-in for the kernel's pooled event record type

slot_meta* dangling_slot_;  // line 45: DET006 raw pointer to pooled record
std::map<slot_meta*, int> slot_rank_;  // line 46: DET003 + DET006

struct payload_slot;  // stand-in for the packet pool's pooled payload record

payload_slot* stale_payload_;  // line 50: DET006 raw pointer to pooled payload
