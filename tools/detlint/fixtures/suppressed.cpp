// detlint fixture: suppression syntax. Valid suppressions silence their
// rule; missing reasons and malformed markers surface as DET000.
#include <unordered_map>

std::unordered_map<int, int> totals_;

int ok_suppressions() {
  int sum = 0;
  for (const auto& [k, v] : totals_) {  // NOLINT-DET(DET001: integer sum is order-independent)
    sum += k + v;
  }
  // NOLINTNEXTLINE-DET(DET001: erase-only sweep, no observable order)
  for (auto it = totals_.begin(); it != totals_.end(); ++it) {
    sum -= it->second;
  }
  return sum;
}

int bad_suppressions() {
  int sum = 0;
  for (const auto& [k, v] : totals_) {  // NOLINT-DET(DET001:)
    sum += k + v;  // ^ line 21: DET000 missing reason + DET001 still fires
  }
  for (const auto& [k, v] : totals_) {  // NOLINT-DET
    sum += k + v;  // ^ line 24: DET000 malformed + DET001 still fires
  }
  for (const auto& [k, v] : totals_) {  // NOLINT-DET(DET002: wrong rule id)
    sum += k + v;  // ^ line 27: DET001 not covered by a DET002 suppression
  }
  return sum;
}
