// DET007 fixture: RNG discipline in chaos/fuzz scope. This file's path
// contains "fuzz", so DET007 applies; each specimen's line number is
// pinned by tests/test_detlint.cpp. Fixtures are scanned, never compiled.
#include <cstdint>
#include <random>

std::uint64_t derive_seed(std::uint64_t master, const char* stream);
struct rng {
  explicit rng(std::uint64_t seed);
  double uniform();
};

int chaos_specimens(std::uint64_t master) {
  std::mt19937 adhoc_engine(12345);
  rng adhoc_literal(42);
  rng named(derive_seed(master, "chaos.plan"));
  // NOLINTNEXTLINE-DET(DET007: fixture exercises the suppression path)
  std::mt19937_64 suppressed(7);
  (void)adhoc_engine;
  (void)suppressed;
  return static_cast<int>(adhoc_literal.uniform() + named.uniform());
}
