// detlint fixture: tokenizer regression — every determinism trigger in this
// file lives inside a comment, a string literal, or a raw string literal, so
// a token-aware lexer must report ZERO findings. A line-regex "sanitizer"
// (the pre-lint_core implementation) trips on several of these.
#include <string>
#include <vector>

// Line comment mentioning rand() and std::random_device — not code.
/* Block comment spanning
   multiple lines with steady_clock and system_clock inside,
   plus a for (auto& kv : table_.begin()) style phrase. */

/* Block comments do not nest: the sequence below ends at the FIRST `*` `/`,
   so the trailing text must already be real code again. */
static const char* kDoc =
    "usage: seed with srand(42) then call rand() per draw";  // in a string

// A raw string literal whose body would otherwise trip DET001/DET002: the
// delimiter means embedded quotes and parens never end the literal early.
static const std::string kRaw = R"lint(
  std::unordered_map<int, int> m;
  for (auto& [k, v] : m) { high_resolution_clock::now(); }
  gettimeofday(&tv, nullptr);
)lint";

// String with an escaped quote before a trigger: \" rand() \" stays inside.
static const char* kEscaped = "say \"rand()\" twice: \"srand(1)\"";

// Backslash-newline continues a line comment: rand() on the next \
   physical line is still commented out, including this random_device.

// A multi-line conventional string via backslash-newline continuation.
static const char* kContinued = "first half mentions system_clock \
second half mentions default_random_engine";

// Char literals: '"' must not open a string; later rand() text is comment.
static const char kQuoteChar = '"';
static const char kEscapedQuote = '\'';

// Digit separators must not be parsed as char literals — if 1'000'000
// opened a char literal, the rand() in this comment would leak into code.
static const long kMillion = 1'000'000;

// Adjacent trigraph-like text: ??/ is NOT a backslash (trigraphs are not
// interpreted), so this comment ends normally and the next line is code.
static const std::vector<int> kValues = {1, 2, 3};

int fixture_sum() {
  int s = static_cast<int>(kMillion % 97) + kQuoteChar + kEscapedQuote;
  for (int v : kValues) s += v;  // plain vector: ordered, fine
  return s + static_cast<int>(kDoc[0]) + static_cast<int>(kRaw.size()) +
         static_cast<int>(kEscaped[0]) + static_cast<int>(kContinued[0]);
}
