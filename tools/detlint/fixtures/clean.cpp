// detlint fixture: determinism-safe idioms that must produce zero findings.
#include <algorithm>
#include <map>
#include <unordered_map>
#include <vector>

std::unordered_map<int, double> weights_;
std::map<int, double> ordered_;

double sorted_extraction() {
  // The sanctioned pattern: extract keys, sort, then walk in key order.
  std::vector<int> keys;
  keys.reserve(weights_.size());
  for (auto& [k, v] : ordered_) keys.push_back(k);  // ordered map: fine
  std::sort(keys.begin(), keys.end());
  double sum = 0;
  for (int k : keys) sum += weights_.at(k);  // keyed lookup: fine
  return sum;
}

std::vector<int> sorted_keys(const std::unordered_map<int, double>& m);

double helper_extraction() {
  // Ranging over a call result is fine even when the unordered container is
  // an argument — ordering is the callee's concern (src/util/ordered.hpp).
  double sum = 0;
  for (int k : sorted_keys(weights_)) sum += weights_.at(k);
  return sum;
}

bool membership(int k) {
  // Lookups and membership tests on unordered containers are fine; only
  // iteration order is hazardous.
  return weights_.find(k) != weights_.end() && weights_.count(k) != 0;
}

// Mentioning rand() or system_clock in a comment is fine, as is "rand(" in a
// string literal:
const char* kDoc = "never call rand() or poll the system_clock";

static const int kLimit = 64;           // const static: fine
static constexpr double kScale = 0.5;   // constexpr: fine

int brand_new(int operand) { return operand; }  // 'rand(' inside identifiers: fine
