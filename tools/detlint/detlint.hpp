// detlint — determinism lint for the simulator source tree.
//
// A deterministic discrete-event simulation is only as reproducible as its
// least-ordered loop: one iteration over an unordered container that emits
// packets, one wall-clock read, one pointer-keyed map, and the replay
// guarantee is gone. detlint is a token-aware scanner (no libclang) built
// on tools/lint_core — comments, string/char literals, raw strings, and
// line continuations are stripped by a real lexer before any rule regex
// runs, so prose can never trip a rule. It enforces the repo's seven
// determinism rule classes:
//
//   DET001  iteration over std::unordered_map / std::unordered_set
//           (range-for or .begin() iterator loops). Extract-and-sort the
//           keys, switch to std::map, or suppress with a reason.
//   DET002  ambient nondeterminism sources: rand()/srand(), time(),
//           std::random_device, std::chrono::{system,steady,high_resolution}
//           _clock, clock(), gettimeofday, argless engine seeding. All
//           randomness must flow through the seeded streams in util/rng.
//   DET003  pointer-keyed containers and address-based hashing: ASLR makes
//           any pointer-ordered traversal differ between runs.
//   DET004  mutable non-atomic static locals / static globals: hidden
//           cross-run and cross-thread state (counters, caches) that breaks
//           twice-run-in-process equality.
//   DET005  unordered parallel floating-point reduction primitives
//           (std::execution policies, OpenMP pragmas, atomic<float/double>,
//           std::reduce/transform_reduce): float addition is not
//           associative, so merge order must be fixed (see scenario/sweep's
//           submission-order merge).
//   DET006  raw pointers to pooled kernel event records (slot_meta /
//           event_action and legacy event_slot / event_record spellings):
//           the event kernel recycles slab slots, so a record's address is
//           neither a stable identity nor ASLR-deterministic — event
//           identity must travel as event_handle's {slot, generation}.
//   DET007  ad-hoc RNG construction in chaos/fuzz scope (any path containing
//           "chaos" or "fuzz"): std engines, or a manet::rng seeded from a
//           literal instead of derive_seed()/make_rng(). Chaos runs are
//           replayed from (scenario, chaos_seed) alone, so every generator
//           there must come from a named stream.
//
// The architecture-level rules (ARCH001-ARCH003, DET008, DET009) live in
// tools/archlint, on the same lint_core lexer.
//
// Suppressions (reason is mandatory, DET000 fires on a missing one):
//   code();  // NOLINT-DET(DET001: counter accumulation is order-free)
//   // NOLINTNEXTLINE-DET(DET004: guarded by init-once mutex)
//   code();
// `*` suppresses every rule on the line: NOLINT-DET(*: generated code).
//
// Per-rule path allowlists exempt the sanctioned homes of a primitive
// (util/rng.cpp for DET002, scenario/sweep.cpp for DET005).
#ifndef MANET_TOOLS_DETLINT_DETLINT_HPP
#define MANET_TOOLS_DETLINT_DETLINT_HPP

#include <string>
#include <vector>

#include "common.hpp"  // lint_core: finding, allow_entry, collect_files

namespace detlint {

using finding = lint_core::finding;
using allow_entry = lint_core::allow_entry;

struct options {
  /// Files or directories to scan (*.cpp, *.cc, *.hpp, *.hh, *.h).
  std::vector<std::string> roots;
  /// Per-rule path exemptions.
  std::vector<allow_entry> allow;
};

/// Exemptions for this repository's layout: the seeded RNG implementation is
/// the one sanctioned home of raw entropy primitives, and the sweep executor
/// owns the (submission-ordered) worker merge.
std::vector<allow_entry> default_allowlist();

/// Expands directories in `roots` to the C++ files beneath them, sorted.
std::vector<std::string> collect_files(const std::vector<std::string>& roots);

/// Scans one in-memory file. `unordered_names` is the project-wide set of
/// identifiers declared as (or aliased to / containers of) unordered
/// containers, as produced by collect_unordered_names.
std::vector<finding> scan_text(const std::string& path, const std::string& text,
                               const std::vector<std::string>& unordered_names,
                               const std::vector<allow_entry>& allow);

/// Pass 1: identifiers declared with an unordered container type anywhere in
/// `texts` (declaration names, alias names, and names of containers whose
/// element type is unordered).
std::vector<std::string> collect_unordered_names(
    const std::vector<std::string>& texts);

/// Full two-pass scan over everything under `opts.roots`.
std::vector<finding> scan(const options& opts);

/// "file:line: RULE: message" rendering used by the CLI and the tests.
std::string format(const finding& f);

}  // namespace detlint

#endif  // MANET_TOOLS_DETLINT_DETLINT_HPP
