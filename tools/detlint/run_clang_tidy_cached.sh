#!/usr/bin/env bash
# clang-tidy over the source tree with a content-hash cache, so unchanged
# files are free on repeat runs (CI restores the cache directory between
# jobs; see .github/workflows/ci.yml).
#
#   run_clang_tidy_cached.sh <clang-tidy> <build-dir> <src-dir>...
#
# The cache key of a file is the SHA-256 of (clang-tidy version, .clang-tidy
# config, file contents). A cache hit replays the stored exit status and
# output; a miss runs clang-tidy and stores both. Any nonzero per-file status
# fails the whole pass.
set -u

TIDY="$1"
BUILD_DIR="$2"
shift 2

CACHE_DIR="${CLANG_TIDY_CACHE_DIR:-${BUILD_DIR}/clang-tidy-cache}"
mkdir -p "${CACHE_DIR}"

ROOT="$(cd "$(dirname "$0")/../.." && pwd)"
CONFIG_HASH="$( (cat "${ROOT}/.clang-tidy" 2>/dev/null; "${TIDY}" --version) | sha256sum | cut -d' ' -f1)"

status=0
checked=0
hits=0
for src in "$@"; do
  while IFS= read -r file; do
    key="$( (echo "${CONFIG_HASH}"; cat "${file}") | sha256sum | cut -d' ' -f1)"
    out="${CACHE_DIR}/${key}.log"
    rc_file="${CACHE_DIR}/${key}.rc"
    if [[ -f "${rc_file}" ]]; then
      rc="$(cat "${rc_file}")"
      hits=$((hits + 1))
    else
      "${TIDY}" --quiet -p "${BUILD_DIR}" "${file}" >"${out}" 2>/dev/null
      rc=$?
      echo "${rc}" >"${rc_file}"
    fi
    if [[ "${rc}" != 0 ]]; then
      echo "clang-tidy: findings in ${file}:"
      cat "${out}"
      status=1
    fi
    checked=$((checked + 1))
  done < <(find "${src}" -name '*.cpp' | sort)
done

echo "clang-tidy: ${checked} file(s), ${hits} cache hit(s), status ${status}"
exit "${status}"
