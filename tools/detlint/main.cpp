// detlint CLI. Exit status 1 when any unsuppressed finding remains, so the
// `lint` build target and the ctest entry fail loudly.
//
//   detlint [--allow=RULE:path-suffix]... [--no-default-allow] [--quiet] PATH...
#include <cstdio>
#include <cstring>
#include <string>

#include "detlint.hpp"

int main(int argc, char** argv) {
  detlint::options opts;
  opts.allow = detlint::default_allowlist();
  bool quiet = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--quiet") {
      quiet = true;
    } else if (arg == "--no-default-allow") {
      opts.allow.clear();
    } else if (arg.rfind("--allow=", 0) == 0) {
      const std::string spec = arg.substr(std::strlen("--allow="));
      const std::size_t colon = spec.find(':');
      if (colon == std::string::npos) {
        std::fprintf(stderr, "detlint: bad --allow spec '%s' (want RULE:path)\n",
                     spec.c_str());
        return 2;
      }
      opts.allow.push_back({spec.substr(0, colon), spec.substr(colon + 1)});
    } else if (arg == "--help" || arg == "-h") {
      std::printf(
          "usage: detlint [--allow=RULE:path-suffix]... [--no-default-allow] "
          "[--quiet] PATH...\n"
          "Scans C++ sources for determinism hazards (DET001..DET006).\n");
      return 0;
    } else {
      opts.roots.push_back(arg);
    }
  }
  if (opts.roots.empty()) {
    std::fprintf(stderr, "detlint: no paths given (try --help)\n");
    return 2;
  }

  const std::vector<detlint::finding> findings = detlint::scan(opts);
  for (const detlint::finding& f : findings) {
    std::printf("%s\n", detlint::format(f).c_str());
  }
  const std::size_t files = detlint::collect_files(opts.roots).size();
  if (!quiet) {
    std::fprintf(stderr, "detlint: %zu file(s) scanned, %zu finding(s)\n", files,
                 findings.size());
  }
  return findings.empty() ? 0 : 1;
}
