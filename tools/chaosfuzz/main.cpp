// chaosfuzz — deterministic chaos fuzzing of the consistency protocols.
//
//   chaosfuzz [--seeds=N] [--start-seed=N] [--jobs=N] [--protocol=NAME]
//             [--no-minimize] [--repro-dir=DIR] [--inject-bug=NAME]
//             [key=value ...]
//   chaosfuzz --replay=FILE
//
// Sweeps chaos seeds over a hardened base scenario, judges each run with
// the end-of-run oracles, minimizes failures by delta-debugging and writes
// replayable repro files. Exit status 1 when any seed fails (or a replay
// does not reproduce), 0 otherwise. Runs are bit-identical for a given
// (scenario, chaos_seed) at any --jobs value.
#include <cstdio>
#include <cstdlib>
#include <exception>
#include <string>
#include <vector>

#include "chaos/fuzzer.hpp"
#include "util/config.hpp"

namespace {

void usage() {
  std::fprintf(
      stderr,
      "usage: chaosfuzz [--seeds=N] [--start-seed=N] [--jobs=N]\n"
      "                 [--protocol=push|pull|push_pull|rpcc] [--no-minimize]\n"
      "                 [--repro-dir=DIR] [--inject-bug=NAME] [key=value ...]\n"
      "       chaosfuzz --replay=FILE\n");
}

bool flag_value(const std::string& arg, const char* name, std::string& out) {
  const std::string prefix = std::string(name) + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  out = arg.substr(prefix.size());
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  using namespace manet;

  std::string replay_path;
  std::string repro_dir = "chaos-repros";
  std::string protocol = "rpcc";
  std::string inject_bug;
  std::uint64_t start_seed = 0;
  int seeds = 50;
  int jobs = 1;
  bool minimize = true;

  // --flags first, then plain key=value tokens become scenario overrides
  // (config::parse_args would otherwise eat "--seeds=200" as a key).
  config overrides;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg.rfind("--", 0) != 0) {
      const char* const one[] = {argv[i]};
      if (overrides.parse_args(1, one).empty()) continue;
      std::fprintf(stderr, "chaosfuzz: unknown argument '%s'\n", arg.c_str());
      usage();
      return 2;
    }
    std::string v;
    if (flag_value(arg, "--seeds", v)) {
      seeds = std::atoi(v.c_str());
    } else if (flag_value(arg, "--start-seed", v)) {
      start_seed = std::strtoull(v.c_str(), nullptr, 10);
    } else if (flag_value(arg, "--jobs", v)) {
      jobs = std::atoi(v.c_str());
    } else if (flag_value(arg, "--protocol", v)) {
      protocol = v;
    } else if (flag_value(arg, "--repro-dir", v)) {
      repro_dir = v;
    } else if (flag_value(arg, "--replay", v)) {
      replay_path = v;
    } else if (flag_value(arg, "--inject-bug", v)) {
      inject_bug = v;
    } else if (arg == "--no-minimize") {
      minimize = false;
    } else if (arg == "--minimize") {
      minimize = true;
    } else if (arg == "--help" || arg == "-h") {
      usage();
      return 0;
    } else {
      std::fprintf(stderr, "chaosfuzz: unknown argument '%s'\n", arg.c_str());
      usage();
      return 2;
    }
  }

  try {
    if (!replay_path.empty()) {
      const replay_result rr = replay_repro(replay_path);
      std::printf("replay %s: failure %s, digest 0x%llx %s 0x%llx\n",
                  replay_path.c_str(),
                  rr.failure_reproduced ? "reproduced" : "NOT reproduced",
                  static_cast<unsigned long long>(rr.digest),
                  rr.digest_matched ? "==" : "!=",
                  static_cast<unsigned long long>(rr.expected_digest));
      std::fputs(rr.report.describe().c_str(), stdout);
      return rr.failure_reproduced && rr.digest_matched ? 0 : 1;
    }

    // Hostile-but-survivable base: small, dense, fast protocol windows so a
    // 900 s run exercises many invalidation/poll cycles, hardened retries
    // on, invariant counting on (strict off — the oracles fold the counts
    // in; a throw would abort the whole sweep instead of failing one seed).
    fuzz_options opt;
    opt.base.n_peers = 16;
    opt.base.cache_num = 5;
    opt.base.sim_time = 900;
    opt.base.warmup = 60;
    opt.base.i_query = 15;
    opt.base.i_update = 60;
    opt.base.ttn = 60;
    opt.base.ttr = 45;
    opt.base.ttp = 120;
    opt.base.seed = 42;
    opt.base.hardened = true;
    opt.base.invariants = true;
    opt.base.invariant_strict = false;

    // key=value overrides layer on top of the fuzz defaults.
    config base_cfg;
    opt.base.to_config(base_cfg);
    for (const std::string& k : overrides.keys()) {
      base_cfg.set(k, overrides.get_string(k, ""));
    }
    opt.base = scenario_params::from_config(base_cfg);
    if (!inject_bug.empty()) opt.base.chaos_bug = inject_bug;

    opt.protocol = protocol;
    opt.first_seed = start_seed;
    opt.seeds = seeds;
    opt.jobs = jobs;
    opt.minimize = minimize;

    const fuzz_result res = run_fuzz(opt);
    std::printf("chaosfuzz: protocol=%s seeds=%llu..%llu failures=%zu\n",
                protocol.c_str(),
                static_cast<unsigned long long>(start_seed),
                static_cast<unsigned long long>(start_seed) + res.runs - 1,
                res.failures.size());
    for (const fuzz_failure& f : res.failures) {
      const std::string path = write_repro(f, protocol, repro_dir);
      std::printf("  seed %llu: %zu oracle violation(s), %zu fault event(s) "
                  "after minimization -> %s\n",
                  static_cast<unsigned long long>(f.chaos_seed),
                  f.report.violations.size(), f.schedule.events.size(),
                  path.c_str());
      std::fputs(f.report.describe().c_str(), stdout);
    }
    return res.ok() ? 0 : 1;
    // Top-level CLI handler: reports on stderr and exits nonzero, so an
    // invariant violation still fails the run — nothing is swallowed.
    // NOLINTNEXTLINE-DET(DET009: top-level CLI handler reports and exits nonzero)
  } catch (const std::exception& e) {
    std::fprintf(stderr, "chaosfuzz: %s\n", e.what());
    return 1;
  }
}
