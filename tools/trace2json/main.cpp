// trace2json: converts a binary flight-recorder capture (metrics/
// trace_format.hpp) back to the JSONL trace format. Usage:
//   trace2json TRACE.bin [OUT.jsonl]
//
// With no output path, lines stream to stdout so jq/pandas pipelines work
// directly: `trace2json run.bin | jq 'select(.ev=="rx")'`.
//
// The output is byte-for-byte the JSONL capture the same run would have
// produced with trace_format=jsonl (both paths share the renderer in
// metrics/trace_format.cpp), so converted captures drop into every existing
// JSONL workflow, tracestat included. A truncated tail (crash-interrupted
// capture) converts every complete record and warns on stderr.
#include <cstdio>
#include <exception>
#include <string>

#include "metrics/trace_format.hpp"

int main(int argc, char** argv) {
  std::string in_path;
  std::string out_path;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--help" || arg == "-h" || arg.rfind("--", 0) == 0) {
      std::printf("usage: trace2json TRACE.bin [OUT.jsonl]\n");
      return arg == "--help" || arg == "-h" ? 0 : 2;
    } else if (in_path.empty()) {
      in_path = arg;
    } else if (out_path.empty()) {
      out_path = arg;
    } else {
      std::fprintf(stderr, "trace2json: unexpected argument '%s'\n",
                   arg.c_str());
      return 2;
    }
  }
  if (in_path.empty()) {
    std::fprintf(stderr, "trace2json: no input trace given\n");
    return 2;
  }

  try {
    std::FILE* out = stdout;
    if (!out_path.empty()) {
      out = std::fopen(out_path.c_str(), "w");
      if (out == nullptr) {
        std::fprintf(stderr, "trace2json: cannot open '%s'\n",
                     out_path.c_str());
        return 2;
      }
    }
    manet::binary_trace_stats stats;
    std::string error;
    bool write_failed = false;
    const bool ok = manet::read_binary_trace(
        in_path,
        [out, &write_failed](const char* line, std::size_t len) {
          if (len == 0) return;  // unknown record type: skip, keep converting
          if (std::fwrite(line, 1, len, out) != len ||
              std::fputc('\n', out) == EOF) {
            write_failed = true;
          }
        },
        &stats, &error);
    if (out != stdout) {
      if (std::fclose(out) != 0) write_failed = true;
    } else if (std::fflush(out) != 0) {
      write_failed = true;
    }
    if (!ok) {
      std::fprintf(stderr, "trace2json: %s\n", error.c_str());
      return 2;
    }
    if (write_failed) {
      std::fprintf(stderr, "trace2json: short write on output\n");
      return 2;
    }
    std::fprintf(stderr,
                 "trace2json: %llu events (%llu kind-name meta records)\n",
                 static_cast<unsigned long long>(stats.records),
                 static_cast<unsigned long long>(stats.meta_records));
    if (stats.truncated_tail) {
      std::fprintf(stderr,
                   "trace2json: warning: truncated tail — the capture ended "
                   "mid-record; complete records were converted\n");
      return 1;
    }
    return 0;
    // Top-level CLI handler: reports on stderr and exits nonzero, so a
    // conversion failure still fails the pipeline — nothing is swallowed.
    // NOLINTNEXTLINE-DET(DET009: top-level CLI handler reports and exits nonzero)
  } catch (const std::exception& e) {
    std::fprintf(stderr, "trace2json: %s\n", e.what());
    return 2;
  }
}
