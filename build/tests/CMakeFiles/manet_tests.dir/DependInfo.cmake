
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/test_cache.cpp" "tests/CMakeFiles/manet_tests.dir/test_cache.cpp.o" "gcc" "tests/CMakeFiles/manet_tests.dir/test_cache.cpp.o.d"
  "/root/repo/tests/test_config_histogram.cpp" "tests/CMakeFiles/manet_tests.dir/test_config_histogram.cpp.o" "gcc" "tests/CMakeFiles/manet_tests.dir/test_config_histogram.cpp.o.d"
  "/root/repo/tests/test_extensions.cpp" "tests/CMakeFiles/manet_tests.dir/test_extensions.cpp.o" "gcc" "tests/CMakeFiles/manet_tests.dir/test_extensions.cpp.o.d"
  "/root/repo/tests/test_flood_discovery.cpp" "tests/CMakeFiles/manet_tests.dir/test_flood_discovery.cpp.o" "gcc" "tests/CMakeFiles/manet_tests.dir/test_flood_discovery.cpp.o.d"
  "/root/repo/tests/test_flooding.cpp" "tests/CMakeFiles/manet_tests.dir/test_flooding.cpp.o" "gcc" "tests/CMakeFiles/manet_tests.dir/test_flooding.cpp.o.d"
  "/root/repo/tests/test_geom_mobility.cpp" "tests/CMakeFiles/manet_tests.dir/test_geom_mobility.cpp.o" "gcc" "tests/CMakeFiles/manet_tests.dir/test_geom_mobility.cpp.o.d"
  "/root/repo/tests/test_hybrid_protocol.cpp" "tests/CMakeFiles/manet_tests.dir/test_hybrid_protocol.cpp.o" "gcc" "tests/CMakeFiles/manet_tests.dir/test_hybrid_protocol.cpp.o.d"
  "/root/repo/tests/test_interference.cpp" "tests/CMakeFiles/manet_tests.dir/test_interference.cpp.o" "gcc" "tests/CMakeFiles/manet_tests.dir/test_interference.cpp.o.d"
  "/root/repo/tests/test_misc_util.cpp" "tests/CMakeFiles/manet_tests.dir/test_misc_util.cpp.o" "gcc" "tests/CMakeFiles/manet_tests.dir/test_misc_util.cpp.o.d"
  "/root/repo/tests/test_network.cpp" "tests/CMakeFiles/manet_tests.dir/test_network.cpp.o" "gcc" "tests/CMakeFiles/manet_tests.dir/test_network.cpp.o.d"
  "/root/repo/tests/test_properties.cpp" "tests/CMakeFiles/manet_tests.dir/test_properties.cpp.o" "gcc" "tests/CMakeFiles/manet_tests.dir/test_properties.cpp.o.d"
  "/root/repo/tests/test_protocol_conformance.cpp" "tests/CMakeFiles/manet_tests.dir/test_protocol_conformance.cpp.o" "gcc" "tests/CMakeFiles/manet_tests.dir/test_protocol_conformance.cpp.o.d"
  "/root/repo/tests/test_pull_protocol.cpp" "tests/CMakeFiles/manet_tests.dir/test_pull_protocol.cpp.o" "gcc" "tests/CMakeFiles/manet_tests.dir/test_pull_protocol.cpp.o.d"
  "/root/repo/tests/test_push_protocol.cpp" "tests/CMakeFiles/manet_tests.dir/test_push_protocol.cpp.o" "gcc" "tests/CMakeFiles/manet_tests.dir/test_push_protocol.cpp.o.d"
  "/root/repo/tests/test_query_log.cpp" "tests/CMakeFiles/manet_tests.dir/test_query_log.cpp.o" "gcc" "tests/CMakeFiles/manet_tests.dir/test_query_log.cpp.o.d"
  "/root/repo/tests/test_replica.cpp" "tests/CMakeFiles/manet_tests.dir/test_replica.cpp.o" "gcc" "tests/CMakeFiles/manet_tests.dir/test_replica.cpp.o.d"
  "/root/repo/tests/test_rng.cpp" "tests/CMakeFiles/manet_tests.dir/test_rng.cpp.o" "gcc" "tests/CMakeFiles/manet_tests.dir/test_rng.cpp.o.d"
  "/root/repo/tests/test_robustness.cpp" "tests/CMakeFiles/manet_tests.dir/test_robustness.cpp.o" "gcc" "tests/CMakeFiles/manet_tests.dir/test_robustness.cpp.o.d"
  "/root/repo/tests/test_routing.cpp" "tests/CMakeFiles/manet_tests.dir/test_routing.cpp.o" "gcc" "tests/CMakeFiles/manet_tests.dir/test_routing.cpp.o.d"
  "/root/repo/tests/test_rpcc.cpp" "tests/CMakeFiles/manet_tests.dir/test_rpcc.cpp.o" "gcc" "tests/CMakeFiles/manet_tests.dir/test_rpcc.cpp.o.d"
  "/root/repo/tests/test_scenario.cpp" "tests/CMakeFiles/manet_tests.dir/test_scenario.cpp.o" "gcc" "tests/CMakeFiles/manet_tests.dir/test_scenario.cpp.o.d"
  "/root/repo/tests/test_sim.cpp" "tests/CMakeFiles/manet_tests.dir/test_sim.cpp.o" "gcc" "tests/CMakeFiles/manet_tests.dir/test_sim.cpp.o.d"
  "/root/repo/tests/test_stats.cpp" "tests/CMakeFiles/manet_tests.dir/test_stats.cpp.o" "gcc" "tests/CMakeFiles/manet_tests.dir/test_stats.cpp.o.d"
  "/root/repo/tests/test_trace.cpp" "tests/CMakeFiles/manet_tests.dir/test_trace.cpp.o" "gcc" "tests/CMakeFiles/manet_tests.dir/test_trace.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/manet.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
