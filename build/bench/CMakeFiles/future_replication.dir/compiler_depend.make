# Empty compiler generated dependencies file for future_replication.
# This may be replaced when dependencies are built.
