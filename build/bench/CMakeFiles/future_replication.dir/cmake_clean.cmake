file(REMOVE_RECURSE
  "CMakeFiles/future_replication.dir/future_replication.cpp.o"
  "CMakeFiles/future_replication.dir/future_replication.cpp.o.d"
  "future_replication"
  "future_replication.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/future_replication.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
