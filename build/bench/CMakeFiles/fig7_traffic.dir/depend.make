# Empty dependencies file for fig7_traffic.
# This may be replaced when dependencies are built.
