file(REMOVE_RECURSE
  "CMakeFiles/fig7_traffic.dir/fig7_traffic.cpp.o"
  "CMakeFiles/fig7_traffic.dir/fig7_traffic.cpp.o.d"
  "fig7_traffic"
  "fig7_traffic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig7_traffic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
