# Empty compiler generated dependencies file for micro_protocol.
# This may be replaced when dependencies are built.
