file(REMOVE_RECURSE
  "CMakeFiles/micro_protocol.dir/micro_protocol.cpp.o"
  "CMakeFiles/micro_protocol.dir/micro_protocol.cpp.o.d"
  "micro_protocol"
  "micro_protocol.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/micro_protocol.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
