file(REMOVE_RECURSE
  "CMakeFiles/fig9_ttl.dir/fig9_ttl.cpp.o"
  "CMakeFiles/fig9_ttl.dir/fig9_ttl.cpp.o.d"
  "fig9_ttl"
  "fig9_ttl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig9_ttl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
