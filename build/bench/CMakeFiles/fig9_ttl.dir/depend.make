# Empty dependencies file for fig9_ttl.
# This may be replaced when dependencies are built.
