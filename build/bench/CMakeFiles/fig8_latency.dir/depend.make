# Empty dependencies file for fig8_latency.
# This may be replaced when dependencies are built.
