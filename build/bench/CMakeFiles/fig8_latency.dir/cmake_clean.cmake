file(REMOVE_RECURSE
  "CMakeFiles/fig8_latency.dir/fig8_latency.cpp.o"
  "CMakeFiles/fig8_latency.dir/fig8_latency.cpp.o.d"
  "fig8_latency"
  "fig8_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig8_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
