file(REMOVE_RECURSE
  "CMakeFiles/mobile_store.dir/mobile_store.cpp.o"
  "CMakeFiles/mobile_store.dir/mobile_store.cpp.o.d"
  "mobile_store"
  "mobile_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mobile_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
