# Empty compiler generated dependencies file for mobile_store.
# This may be replaced when dependencies are built.
