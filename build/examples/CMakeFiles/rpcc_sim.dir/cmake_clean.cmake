file(REMOVE_RECURSE
  "CMakeFiles/rpcc_sim.dir/rpcc_sim.cpp.o"
  "CMakeFiles/rpcc_sim.dir/rpcc_sim.cpp.o.d"
  "rpcc_sim"
  "rpcc_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rpcc_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
