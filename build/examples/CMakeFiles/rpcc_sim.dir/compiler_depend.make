# Empty compiler generated dependencies file for rpcc_sim.
# This may be replaced when dependencies are built.
