file(REMOVE_RECURSE
  "CMakeFiles/gateway.dir/gateway.cpp.o"
  "CMakeFiles/gateway.dir/gateway.cpp.o.d"
  "gateway"
  "gateway.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gateway.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
