# Empty dependencies file for gateway.
# This may be replaced when dependencies are built.
