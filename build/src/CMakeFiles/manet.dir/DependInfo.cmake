
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/cache/cache_store.cpp" "src/CMakeFiles/manet.dir/cache/cache_store.cpp.o" "gcc" "src/CMakeFiles/manet.dir/cache/cache_store.cpp.o.d"
  "/root/repo/src/cache/discovery.cpp" "src/CMakeFiles/manet.dir/cache/discovery.cpp.o" "gcc" "src/CMakeFiles/manet.dir/cache/discovery.cpp.o.d"
  "/root/repo/src/cache/flood_discovery.cpp" "src/CMakeFiles/manet.dir/cache/flood_discovery.cpp.o" "gcc" "src/CMakeFiles/manet.dir/cache/flood_discovery.cpp.o.d"
  "/root/repo/src/cache/workload.cpp" "src/CMakeFiles/manet.dir/cache/workload.cpp.o" "gcc" "src/CMakeFiles/manet.dir/cache/workload.cpp.o.d"
  "/root/repo/src/consistency/hybrid_protocol.cpp" "src/CMakeFiles/manet.dir/consistency/hybrid_protocol.cpp.o" "gcc" "src/CMakeFiles/manet.dir/consistency/hybrid_protocol.cpp.o.d"
  "/root/repo/src/consistency/protocol.cpp" "src/CMakeFiles/manet.dir/consistency/protocol.cpp.o" "gcc" "src/CMakeFiles/manet.dir/consistency/protocol.cpp.o.d"
  "/root/repo/src/consistency/pull_protocol.cpp" "src/CMakeFiles/manet.dir/consistency/pull_protocol.cpp.o" "gcc" "src/CMakeFiles/manet.dir/consistency/pull_protocol.cpp.o.d"
  "/root/repo/src/consistency/push_protocol.cpp" "src/CMakeFiles/manet.dir/consistency/push_protocol.cpp.o" "gcc" "src/CMakeFiles/manet.dir/consistency/push_protocol.cpp.o.d"
  "/root/repo/src/consistency/rpcc/cache_node.cpp" "src/CMakeFiles/manet.dir/consistency/rpcc/cache_node.cpp.o" "gcc" "src/CMakeFiles/manet.dir/consistency/rpcc/cache_node.cpp.o.d"
  "/root/repo/src/consistency/rpcc/coefficients.cpp" "src/CMakeFiles/manet.dir/consistency/rpcc/coefficients.cpp.o" "gcc" "src/CMakeFiles/manet.dir/consistency/rpcc/coefficients.cpp.o.d"
  "/root/repo/src/consistency/rpcc/relay_peer.cpp" "src/CMakeFiles/manet.dir/consistency/rpcc/relay_peer.cpp.o" "gcc" "src/CMakeFiles/manet.dir/consistency/rpcc/relay_peer.cpp.o.d"
  "/root/repo/src/consistency/rpcc/rpcc_protocol.cpp" "src/CMakeFiles/manet.dir/consistency/rpcc/rpcc_protocol.cpp.o" "gcc" "src/CMakeFiles/manet.dir/consistency/rpcc/rpcc_protocol.cpp.o.d"
  "/root/repo/src/consistency/rpcc/source_host.cpp" "src/CMakeFiles/manet.dir/consistency/rpcc/source_host.cpp.o" "gcc" "src/CMakeFiles/manet.dir/consistency/rpcc/source_host.cpp.o.d"
  "/root/repo/src/metrics/collector.cpp" "src/CMakeFiles/manet.dir/metrics/collector.cpp.o" "gcc" "src/CMakeFiles/manet.dir/metrics/collector.cpp.o.d"
  "/root/repo/src/metrics/query_log.cpp" "src/CMakeFiles/manet.dir/metrics/query_log.cpp.o" "gcc" "src/CMakeFiles/manet.dir/metrics/query_log.cpp.o.d"
  "/root/repo/src/metrics/trace_writer.cpp" "src/CMakeFiles/manet.dir/metrics/trace_writer.cpp.o" "gcc" "src/CMakeFiles/manet.dir/metrics/trace_writer.cpp.o.d"
  "/root/repo/src/mobility/group_mobility.cpp" "src/CMakeFiles/manet.dir/mobility/group_mobility.cpp.o" "gcc" "src/CMakeFiles/manet.dir/mobility/group_mobility.cpp.o.d"
  "/root/repo/src/mobility/random_walk.cpp" "src/CMakeFiles/manet.dir/mobility/random_walk.cpp.o" "gcc" "src/CMakeFiles/manet.dir/mobility/random_walk.cpp.o.d"
  "/root/repo/src/mobility/random_waypoint.cpp" "src/CMakeFiles/manet.dir/mobility/random_waypoint.cpp.o" "gcc" "src/CMakeFiles/manet.dir/mobility/random_waypoint.cpp.o.d"
  "/root/repo/src/mobility/waypoint_trace.cpp" "src/CMakeFiles/manet.dir/mobility/waypoint_trace.cpp.o" "gcc" "src/CMakeFiles/manet.dir/mobility/waypoint_trace.cpp.o.d"
  "/root/repo/src/net/flooding.cpp" "src/CMakeFiles/manet.dir/net/flooding.cpp.o" "gcc" "src/CMakeFiles/manet.dir/net/flooding.cpp.o.d"
  "/root/repo/src/net/mac.cpp" "src/CMakeFiles/manet.dir/net/mac.cpp.o" "gcc" "src/CMakeFiles/manet.dir/net/mac.cpp.o.d"
  "/root/repo/src/net/network.cpp" "src/CMakeFiles/manet.dir/net/network.cpp.o" "gcc" "src/CMakeFiles/manet.dir/net/network.cpp.o.d"
  "/root/repo/src/net/node.cpp" "src/CMakeFiles/manet.dir/net/node.cpp.o" "gcc" "src/CMakeFiles/manet.dir/net/node.cpp.o.d"
  "/root/repo/src/net/radio.cpp" "src/CMakeFiles/manet.dir/net/radio.cpp.o" "gcc" "src/CMakeFiles/manet.dir/net/radio.cpp.o.d"
  "/root/repo/src/net/traffic_meter.cpp" "src/CMakeFiles/manet.dir/net/traffic_meter.cpp.o" "gcc" "src/CMakeFiles/manet.dir/net/traffic_meter.cpp.o.d"
  "/root/repo/src/replica/anti_entropy.cpp" "src/CMakeFiles/manet.dir/replica/anti_entropy.cpp.o" "gcc" "src/CMakeFiles/manet.dir/replica/anti_entropy.cpp.o.d"
  "/root/repo/src/routing/aodv.cpp" "src/CMakeFiles/manet.dir/routing/aodv.cpp.o" "gcc" "src/CMakeFiles/manet.dir/routing/aodv.cpp.o.d"
  "/root/repo/src/routing/oracle_router.cpp" "src/CMakeFiles/manet.dir/routing/oracle_router.cpp.o" "gcc" "src/CMakeFiles/manet.dir/routing/oracle_router.cpp.o.d"
  "/root/repo/src/scenario/params.cpp" "src/CMakeFiles/manet.dir/scenario/params.cpp.o" "gcc" "src/CMakeFiles/manet.dir/scenario/params.cpp.o.d"
  "/root/repo/src/scenario/scenario.cpp" "src/CMakeFiles/manet.dir/scenario/scenario.cpp.o" "gcc" "src/CMakeFiles/manet.dir/scenario/scenario.cpp.o.d"
  "/root/repo/src/scenario/sweep.cpp" "src/CMakeFiles/manet.dir/scenario/sweep.cpp.o" "gcc" "src/CMakeFiles/manet.dir/scenario/sweep.cpp.o.d"
  "/root/repo/src/sim/event_queue.cpp" "src/CMakeFiles/manet.dir/sim/event_queue.cpp.o" "gcc" "src/CMakeFiles/manet.dir/sim/event_queue.cpp.o.d"
  "/root/repo/src/sim/simulator.cpp" "src/CMakeFiles/manet.dir/sim/simulator.cpp.o" "gcc" "src/CMakeFiles/manet.dir/sim/simulator.cpp.o.d"
  "/root/repo/src/sim/timer.cpp" "src/CMakeFiles/manet.dir/sim/timer.cpp.o" "gcc" "src/CMakeFiles/manet.dir/sim/timer.cpp.o.d"
  "/root/repo/src/util/config.cpp" "src/CMakeFiles/manet.dir/util/config.cpp.o" "gcc" "src/CMakeFiles/manet.dir/util/config.cpp.o.d"
  "/root/repo/src/util/histogram.cpp" "src/CMakeFiles/manet.dir/util/histogram.cpp.o" "gcc" "src/CMakeFiles/manet.dir/util/histogram.cpp.o.d"
  "/root/repo/src/util/logging.cpp" "src/CMakeFiles/manet.dir/util/logging.cpp.o" "gcc" "src/CMakeFiles/manet.dir/util/logging.cpp.o.d"
  "/root/repo/src/util/rng.cpp" "src/CMakeFiles/manet.dir/util/rng.cpp.o" "gcc" "src/CMakeFiles/manet.dir/util/rng.cpp.o.d"
  "/root/repo/src/util/stats.cpp" "src/CMakeFiles/manet.dir/util/stats.cpp.o" "gcc" "src/CMakeFiles/manet.dir/util/stats.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
