file(REMOVE_RECURSE
  "libmanet.a"
)
